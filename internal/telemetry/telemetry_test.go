package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"libshalom/internal/faults"
)

func TestKeyIndexRoundTrip(t *testing.T) {
	seen := make(map[int]bool, numKeys)
	for prec := uint8(0); prec < numPrec; prec++ {
		for mode := uint8(0); mode < numMode; mode++ {
			for class := uint8(0); class < uint8(numShapeClasses); class++ {
				for kernel := uint8(0); kernel < numKernel; kernel++ {
					for outcome := uint8(0); outcome < numOutcome; outcome++ {
						idx := keyIndex(prec, mode, class, kernel, outcome)
						if idx < 0 || idx >= numKeys {
							t.Fatalf("keyIndex out of range: %d", idx)
						}
						if seen[idx] {
							t.Fatalf("keyIndex collision at %d", idx)
						}
						seen[idx] = true
						p, m, c, k, o := unpackKey(idx)
						if p != prec || m != mode || c != class || k != kernel || o != outcome {
							t.Fatalf("unpackKey(%d) = (%d,%d,%d,%d,%d), want (%d,%d,%d,%d,%d)",
								idx, p, m, c, k, o, prec, mode, class, kernel, outcome)
						}
					}
				}
			}
		}
	}
	if len(seen) != numKeys {
		t.Fatalf("covered %d keys, want %d", len(seen), numKeys)
	}
}

func TestBucketLog2(t *testing.T) {
	cases := []struct {
		v    uint64
		n    int
		want int
	}{
		{0, 8, 0},
		{1, 8, 1},
		{2, 8, 2},
		{3, 8, 2},
		{4, 8, 3},
		{1 << 40, 8, 7}, // clamped to n-1
	}
	for _, c := range cases {
		if got := bucketLog2(c.v, c.n); got != c.want {
			t.Errorf("bucketLog2(%d, %d) = %d, want %d", c.v, c.n, got, c.want)
		}
	}
}

func TestClassifyShape(t *testing.T) {
	cases := []struct {
		m, n, k int
		want    ShapeClass
	}{
		{0, 8, 8, ShapeEmpty},
		{8, 8, 8, ShapeTiny},
		{16, 16, 16, ShapeTiny},
		{64, 64, 64, ShapeSmall},
		{128, 128, 128, ShapeSmall},
		{160, 160, 160, ShapeMedium},
		{256, 256, 256, ShapeLarge},
		{1024, 64, 64, ShapeIrregular},
		{64, 1024, 64, ShapeIrregular},
		{129, 129, 8, ShapeMedium},
	}
	for _, c := range cases {
		if got := ClassifyShape(c.m, c.n, c.k); got != c.want {
			t.Errorf("ClassifyShape(%d,%d,%d) = %s, want %s", c.m, c.n, c.k, got, c.want)
		}
	}
	// Every class has a distinct, non-"unknown" name.
	names := map[string]bool{}
	for _, cl := range ShapeClasses() {
		s := cl.String()
		if s == "" || names[s] {
			t.Fatalf("shape class %d has bad or duplicate name %q", cl, s)
		}
		names[s] = true
	}
}

// TestNilRecorder verifies the disabled contract: every method on a nil
// Recorder is a safe no-op returning zero values.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Now() != 0 {
		t.Fatal("nil Now() != 0")
	}
	if r.CallTid() != 0 {
		t.Fatal("nil CallTid() != 0")
	}
	r.CallDone(PrecF32, 0, uint8(ShapeSmall), KernelFast, OutcomeOK, 0, 1)
	r.CallEvent(PrecF32, 0, uint8(ShapeSmall), KernelFast, OutcomeCancelled)
	r.ThreadChoice(4, 1)
	r.DegradationEvent(DegrPanic)
	r.FaultInjected(faults.PanicInKernel)
	r.TaskQueued(3)
	r.TaskStart(10)
	r.TaskDone(10)
	r.Span(PhaseCall, 0, 0, 0, 0, 1, 1, 1)
	if _, err := r.WriteTrace(io.Discard); err == nil {
		t.Fatal("nil WriteTrace should error")
	}
	s := r.Snapshot()
	if len(s.Calls) != 0 || s.Pool.TasksQueued != 0 {
		t.Fatal("nil Snapshot not zero")
	}
}

func TestCallDoneAggregation(t *testing.T) {
	r := New(Options{})
	start := r.Now()
	for i := 0; i < 5; i++ {
		r.CallDone(PrecF32, 2, uint8(ShapeSmall), KernelFast, OutcomeOK, start, 2*64*64*64)
	}
	r.CallDone(PrecF64, 0, uint8(ShapeTiny), KernelRef, OutcomeDegraded, start, 2*8*8*8)
	r.CallEvent(PrecF32, 1, uint8(ShapeLarge), KernelFast, OutcomeCancelled)

	s := r.Snapshot()
	if len(s.Calls) != 3 {
		t.Fatalf("got %d call keys, want 3", len(s.Calls))
	}
	byKey := map[string]CallStat{}
	for _, c := range s.Calls {
		byKey[c.Precision+"/"+c.Mode+"/"+c.ShapeClass+"/"+c.Kernel+"/"+c.Outcome] = c
	}
	ok := byKey["f32/TN/small/fast/ok"]
	if ok.Count != 5 {
		t.Fatalf("f32/TN/small/fast/ok count = %d, want 5", ok.Count)
	}
	if ok.DurNs == 0 || ok.Flops != 5*2*64*64*64 {
		t.Fatalf("bad sums: dur=%d flops=%d", ok.DurNs, ok.Flops)
	}
	var latSum, gfSum uint64
	for _, n := range ok.LatencyBuckets {
		latSum += n
	}
	for _, n := range ok.GFLOPSBuckets {
		gfSum += n
	}
	if latSum != 5 || gfSum != 5 {
		t.Fatalf("histogram totals %d/%d, want 5/5", latSum, gfSum)
	}
	if c := byKey["f64/NN/tiny/ref/degraded"]; c.Count != 1 {
		t.Fatalf("degraded key count = %d, want 1", c.Count)
	}
	cancelled := byKey["f32/NT/large/fast/cancelled"]
	if cancelled.Count != 1 || cancelled.DurNs != 0 {
		t.Fatalf("cancelled key = %+v, want count 1 with zero duration", cancelled)
	}
	if got := s.CallsTotal(""); got != 7 {
		t.Fatalf("CallsTotal = %d, want 7", got)
	}
	if got := s.CallsTotal("small"); got != 5 {
		t.Fatalf("CallsTotal(small) = %d, want 5", got)
	}
}

func TestThreadAndPoolStats(t *testing.T) {
	r := New(Options{})
	r.ThreadChoice(8, 1) // clamped
	r.ThreadChoice(4, 4)
	r.TaskQueued(3)
	r.TaskStart(100)
	r.TaskDone(200)
	s := r.Snapshot()
	if s.Threads.Calls != 2 || s.Threads.RequestedSum != 12 || s.Threads.ChosenSum != 5 || s.Threads.ClampedCalls != 1 {
		t.Fatalf("thread stats = %+v", s.Threads)
	}
	if s.Pool.TasksQueued != 3 || s.Pool.TasksStarted != 1 || s.Pool.TasksDone != 1 {
		t.Fatalf("pool stats = %+v", s.Pool)
	}
	if s.Pool.InFlight != 0 || s.Pool.QueueWaitNs != 100 || s.Pool.BusyNs != 200 {
		t.Fatalf("pool gauges = %+v", s.Pool)
	}
}

func TestEventCounters(t *testing.T) {
	r := New(Options{})
	r.DegradationEvent(DegrNumeric)
	r.DegradationEvent(DegrNumeric)
	r.FaultInjected(faults.SpuriousNaN)
	s := r.Snapshot()
	if len(s.Degradations) != 1 || s.Degradations[0].Name != "numeric-guard" || s.Degradations[0].Count != 2 {
		t.Fatalf("degradations = %+v", s.Degradations)
	}
	if len(s.Faults) != 1 || s.Faults[0].Count != 1 {
		t.Fatalf("faults = %+v", s.Faults)
	}
	// Out-of-range values must not panic or record.
	r.DegradationEvent(200)
	r.FaultInjected(faults.Point(200))
}

func TestRingOverwrite(t *testing.T) {
	r := New(Options{TraceEvents: 4})
	for i := 0; i < 10; i++ {
		start := r.Now()
		r.Span(PhaseKernelBatch, 1, start, 0, PrecF32, 8, 8, 8)
	}
	s := r.Snapshot()
	if s.TraceSpans != 10 {
		t.Fatalf("TraceSpans = %d, want 10", s.TraceSpans)
	}
	if s.TraceDropped != 6 {
		t.Fatalf("TraceDropped = %d, want 6", s.TraceDropped)
	}
	var buf bytes.Buffer
	n, err := r.WriteTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("exported %d spans, want ring capacity 4", n)
	}
	if err := ValidateTrace(&buf); err != nil {
		t.Fatalf("overwritten ring exported invalid trace: %v", err)
	}
}

func TestTraceDisabled(t *testing.T) {
	r := New(Options{TraceEvents: -1})
	r.Span(PhaseCall, 0, 0, 0, 0, 1, 1, 1) // must not panic
	if _, err := r.WriteTrace(io.Discard); err == nil {
		t.Fatal("WriteTrace with tracing disabled should error")
	}
	if s := r.Snapshot(); s.TraceSpans != 0 {
		t.Fatalf("TraceSpans = %d, want 0", s.TraceSpans)
	}
}

// TestTraceExportNesting records a realistic call shape (call > plan,
// call > block > pack + kernel-batch) and checks the exported JSON is
// valid and properly nested on each lane.
func TestTraceExportNesting(t *testing.T) {
	r := New(Options{})
	tid := r.CallTid()
	callStart := r.Now()
	planStart := r.Now()
	r.Span(PhasePlan, tid, planStart, 2, PrecF32, 64, 64, 64)
	blockStart := r.Now()
	packStart := r.Now()
	r.Span(PhasePack, tid, packStart, 2, PrecF32, 64, 64, 64)
	kernStart := r.Now()
	r.Span(PhaseKernelBatch, tid, kernStart, 2, PrecF32, 64, 64, 64)
	r.Span(PhaseBlock, tid, blockStart, 2, PrecF32, 64, 64, 64)
	r.Span(PhaseCall, tid, callStart, 2, PrecF32, 64, 64, 64)

	var buf bytes.Buffer
	n, err := r.WriteTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("exported %d spans, want 5", n)
	}
	raw := buf.Bytes()
	if err := ValidateTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatal(err)
	}
	if tf.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) != 10 {
		t.Fatalf("got %d events, want 10 (5 B/E pairs)", len(tf.TraceEvents))
	}
	first, last := tf.TraceEvents[0], tf.TraceEvents[len(tf.TraceEvents)-1]
	if first.Ph != "B" || !strings.HasPrefix(first.Name, "gemm TN f32 64x64x64") {
		t.Fatalf("first event = %+v, want gemm call B", first)
	}
	if last.Ph != "E" || !strings.HasPrefix(last.Name, "gemm ") {
		t.Fatalf("last event = %+v, want gemm call E", last)
	}
	if first.Args["mode"] != "TN" {
		t.Fatalf("call args = %v, want mode TN", first.Args)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{"displayTimeUnit":"ns"}`,
		"missing fields":  `{"traceEvents":[{"ph":"B"}]}`,
		"unbalanced B":    `{"traceEvents":[{"name":"x","ph":"B","ts":1,"tid":1}]}`,
		"E without B":     `{"traceEvents":[{"name":"x","ph":"E","ts":1,"tid":1}]}`,
		"name mismatch":   `{"traceEvents":[{"name":"x","ph":"B","ts":1,"tid":1},{"name":"y","ph":"E","ts":2,"tid":1}]}`,
		"time regression": `{"traceEvents":[{"name":"x","ph":"B","ts":2,"tid":1},{"name":"x","ph":"E","ts":1,"tid":1}]}`,
		"bad phase":       `{"traceEvents":[{"name":"x","ph":"X","ts":1,"tid":1}]}`,
	}
	for name, raw := range cases {
		if err := ValidateTrace(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: ValidateTrace accepted %q", name, raw)
		}
	}
	good := `{"traceEvents":[{"name":"x","ph":"B","ts":1,"tid":1},{"name":"x","ph":"E","ts":2,"tid":1}]}`
	if err := ValidateTrace(strings.NewReader(good)); err != nil {
		t.Errorf("ValidateTrace rejected a valid trace: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New(Options{})
	start := r.Now()
	r.CallDone(PrecF32, 0, uint8(ShapeSmall), KernelFast, OutcomeOK, start, 2*64*64*64)
	r.ThreadChoice(4, 1)
	r.FaultInjected(faults.PanicInKernel)
	r.DegradationEvent(DegrPanic)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`libshalom_gemm_calls_total{precision="f32",mode="NN",shape_class="small",kernel="fast",outcome="ok"} 1`,
		`libshalom_gemm_latency_seconds_bucket{precision="f32",mode="NN",shape_class="small",kernel="fast",outcome="ok",le="+Inf"} 1`,
		`libshalom_gemm_gflops_count{precision="f32",mode="NN",shape_class="small",kernel="fast",outcome="ok"} 1`,
		"libshalom_threads_policy_calls_total 1",
		"libshalom_threads_clamped_calls_total 1",
		`libshalom_fault_events_total{point="panic-in-kernel"} 1`,
		`libshalom_degradation_events_total{reason="runtime-panic"} 1`,
		"libshalom_trace_spans_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(out, "libshalom_gemm_latency_seconds_count") {
		t.Error("missing histogram count")
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New(Options{})
	start := r.Now()
	r.Span(PhaseCall, r.CallTid(), start, 0, PrecF32, 8, 8, 8)
	r.CallDone(PrecF32, 0, uint8(ShapeTiny), KernelFast, OutcomeOK, start, 2*8*8*8)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "libshalom_gemm_calls_total") {
		t.Fatalf("/metrics: %d %q", code, body[:min(len(body), 120)])
	}
	code, body := get("/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.CallsTotal("") != 1 {
		t.Fatalf("/snapshot calls = %d, want 1", snap.CallsTotal(""))
	}
	code, body = get("/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: %d", code)
	}
	if err := ValidateTrace(strings.NewReader(body)); err != nil {
		t.Fatalf("/trace invalid: %v", err)
	}
}

func TestCallTidLanes(t *testing.T) {
	r := New(Options{})
	first := r.CallTid()
	if first != 1000 {
		t.Fatalf("first caller lane = %d, want 1000", first)
	}
	if WorkerTid(-1, first) != first {
		t.Fatal("single-threaded path must inherit the caller lane")
	}
	if WorkerTid(0, first) != 1 || WorkerTid(3, first) != 4 {
		t.Fatal("worker lanes must be worker+1")
	}
}
