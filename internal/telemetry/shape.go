package telemetry

// ShapeClass buckets a GEMM problem into the paper's workload regimes so
// per-shape metrics stay low-cardinality: "small" is the §7.2 small-GEMM
// regime (every dimension ≤ 128, the SeisSol/NekBox sizes), "irregular" the
// §6 regime (one C dimension much larger than the other — the thresholds
// match the driver's threadsFor policy), "large" the conventionally
// BLAS-friendly regime, and "tiny"/"medium"/"empty" the remainder.
type ShapeClass uint8

// Shape classes, densest first.
const (
	ShapeEmpty ShapeClass = iota
	ShapeTiny
	ShapeSmall
	ShapeMedium
	ShapeLarge
	ShapeIrregular
	numShapeClasses
)

var shapeClassNames = [numShapeClasses]string{
	"empty", "tiny", "small", "medium", "large", "irregular",
}

// String names the class as exposed in metric labels.
func (c ShapeClass) String() string {
	if c < numShapeClasses {
		return shapeClassNames[c]
	}
	return "unknown"
}

// ShapeClasses lists every class in label order.
func ShapeClasses() []ShapeClass {
	out := make([]ShapeClass, numShapeClasses)
	for i := range out {
		out[i] = ShapeClass(i)
	}
	return out
}

// RepresentativeShape returns the M×N×K problem the attribution engine
// models a class with: a central member of the regime, chosen so
// ClassifyShape maps it back to the class (attrib tests pin the round
// trip). Model predictions are per class, not per shape, so the exact
// member only needs to be typical, not optimal.
func RepresentativeShape(c ShapeClass) (m, n, k int) {
	switch c {
	case ShapeTiny:
		return 12, 12, 12
	case ShapeSmall:
		return 64, 64, 64 // the §7.2 SeisSol/NekBox regime centre
	case ShapeMedium:
		return 192, 192, 192
	case ShapeLarge:
		return 512, 512, 512
	case ShapeIrregular:
		return 64, 2048, 256 // §6: one C dimension much larger
	default:
		return 0, 0, 0
	}
}

// ClassifyShape assigns an M×N×K problem to its class. Pure arithmetic —
// safe on the telemetry-off hot path.
func ClassifyShape(m, n, k int) ShapeClass {
	switch {
	case m <= 0 || n <= 0 || k <= 0:
		return ShapeEmpty
	case m <= 16 && n <= 16 && k <= 16:
		return ShapeTiny
	case m <= 128 && n <= 128 && k <= 128:
		return ShapeSmall
	case (m >= 8*n || n >= 8*m) && (m >= 512 || n >= 512):
		return ShapeIrregular
	case m >= 256 && n >= 256:
		return ShapeLarge
	default:
		return ShapeMedium
	}
}
