package telemetry

import (
	"math"
	"sync/atomic"
)

// Attribution sketch: a finer-grained achieved-GFLOPS histogram per
// (precision, mode, shape class, kernel) key, fed only by OutcomeOK calls.
// The coarse gfHist (one bucket per octave) is good enough for dashboards
// but too blunt for the attribution engine's windowed p50/p99: a 2× bucket
// width swallows the 25–40% efficiency shortfalls the drift detector is
// supposed to see. This sketch keeps 8 sub-buckets per octave (≤ 12.5%
// relative width) over 16 octaves anchored at 2⁻⁶ GFLOPS, which covers
// everything from a scalar reference kernel on a tiny shape to multi-chip
// peak. The arrays live on the Recorder so the hot-path update stays a
// static call chain — an interface-valued sink would defeat the hotpath
// analyzer's transitive proof (and cost an indirect call per GEMM).
//
// internal/attrib polls the cumulative cells via ReadAttrib and differences
// consecutive reads into rolling windows; nothing here ever resets.

// Attribution key space: the call-key space without the outcome axis.
const NumAttribKeys = int(numPrec) * numMode * int(numShapeClasses) * int(numKernel)

// AttribKeyIndex returns the dense attribution index of a key.
func AttribKeyIndex(prec, mode, class, kernel uint8) int {
	return ((int(prec)*numMode+int(mode))*int(numShapeClasses)+int(class))*int(numKernel) + int(kernel)
}

// AttribKeyAt unpacks a dense attribution index.
func AttribKeyAt(idx int) (prec, mode, class, kernel uint8) {
	kernel = uint8(idx % int(numKernel))
	idx /= int(numKernel)
	class = uint8(idx % int(numShapeClasses))
	idx /= int(numShapeClasses)
	mode = uint8(idx % numMode)
	idx /= numMode
	prec = uint8(idx)
	return
}

// AttribKeyLabels renders an attribution index's label values.
func AttribKeyLabels(idx int) (prec, mode, class, kernel string) {
	p, m, c, k := AttribKeyAt(idx)
	return precNames[p], modeNames[m], ShapeClass(c).String(), kernelNames[k]
}

// Sketch geometry: value v (GFLOPS) maps to fixed point u = v·2⁶; octave
// h = ⌊log₂ u⌋ and the next 3 bits select one of 8 sub-buckets, so bucket
// (h, s) covers [(8+s)·2^(h-9), (9+s)·2^(h-9)) GFLOPS.
const (
	attribOctaves    = 16
	attribSubBuckets = 8
	// NumAttribBuckets is the sketch resolution per attribution key.
	NumAttribBuckets = attribOctaves * attribSubBuckets
)

// attribBucket maps an achieved rate in GFLOPS to its sketch bucket. Pure
// integer arithmetic — it runs inside CallDone on the hot path.
func attribBucket(gf float64) int {
	v := uint64(gf * 64)
	if v == 0 {
		return 0
	}
	// Octave: index of the leading bit (bucketLog2 counts bits, so -1).
	h := bucketLog2(v, 64) - 1
	var sub uint64
	if h >= 3 {
		sub = (v >> uint(h-3)) & 7
	} else {
		sub = (v << uint(3-h)) & 7
	}
	idx := h*attribSubBuckets + int(sub)
	if idx >= NumAttribBuckets {
		idx = NumAttribBuckets - 1
	}
	return idx
}

// AttribBucketValue returns the representative (midpoint) GFLOPS value of a
// sketch bucket, the value quantile estimates report.
func AttribBucketValue(idx int) float64 {
	h := idx / attribSubBuckets
	sub := idx % attribSubBuckets
	return math.Ldexp(8.5+float64(sub), h-9)
}

// AttribQuantile estimates the q-quantile (q in [0,1]) of a sketch
// histogram. Zero when the histogram is empty.
func AttribQuantile(hist *[NumAttribBuckets]uint64, q float64) float64 {
	var total uint64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for b, n := range hist {
		cum += n
		if cum > rank {
			return AttribBucketValue(b)
		}
	}
	return AttribBucketValue(NumAttribBuckets - 1)
}

// attribStats is the Recorder's attribution section: the cumulative sketch
// plus the drift/window event counters the engine feeds back.
type attribStats struct {
	count [NumAttribKeys]atomic.Uint64
	durNs [NumAttribKeys]atomic.Uint64
	flops [NumAttribKeys]atomic.Uint64
	hist  [NumAttribKeys][NumAttribBuckets]atomic.Uint64

	// drift[class] counts drift events the attribution engine emitted for
	// the class; windows counts completed attribution windows.
	drift   [numShapeClasses]atomic.Uint64
	windows atomic.Uint64
}

// AttribCell is one attribution key's cumulative totals as read by the
// engine; the engine differences consecutive reads into windows.
type AttribCell struct {
	Count uint64
	DurNs uint64
	Flops uint64
	Hist  [NumAttribBuckets]uint64
}

// ReadAttrib copies the cumulative attribution cells into dst, in place so
// the engine's periodic poll does not allocate. A nil recorder zeroes dst.
func (r *Recorder) ReadAttrib(dst *[NumAttribKeys]AttribCell) {
	if r == nil {
		*dst = [NumAttribKeys]AttribCell{}
		return
	}
	for i := 0; i < NumAttribKeys; i++ {
		c := &dst[i]
		c.Count = r.attrib.count[i].Load()
		c.DurNs = r.attrib.durNs[i].Load()
		c.Flops = r.attrib.flops[i].Load()
		for b := 0; b < NumAttribBuckets; b++ {
			c.Hist[b] = r.attrib.hist[i][b].Load()
		}
	}
}

// AttribDriftEvent counts one drift event the attribution engine detected
// for a shape class — the typed telemetry event behind the
// libshalom_attrib_drift_events_total counter family.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) AttribDriftEvent(class uint8) {
	if r == nil || class >= uint8(numShapeClasses) {
		return
	}
	probeAtomicWrite()
	r.attrib.drift[class].Add(1)
}

// AttribWindowDone counts one completed attribution window.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) AttribWindowDone() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.attrib.windows.Add(1)
}

// AttribDriftCount returns the cumulative drift events for one class.
func (r *Recorder) AttribDriftCount(class uint8) uint64 {
	if r == nil || class >= uint8(numShapeClasses) {
		return 0
	}
	return r.attrib.drift[class].Load()
}

// AttribStat is one attribution key's cumulative summary in a Snapshot.
type AttribStat struct {
	Precision  string `json:"precision"`
	Mode       string `json:"mode"`
	ShapeClass string `json:"shape_class"`
	Kernel     string `json:"kernel"`

	Count uint64 `json:"count"`
	DurNs uint64 `json:"dur_ns"`
	Flops uint64 `json:"flops"`
	// MeanGFLOPS is time-weighted; P50/P99 come from the fine sketch.
	MeanGFLOPS float64 `json:"mean_gflops"`
	P50GFLOPS  float64 `json:"p50_gflops"`
	P99GFLOPS  float64 `json:"p99_gflops"`
}

// attribSnapshot renders the non-empty attribution cells.
func (r *Recorder) attribSnapshot() (stats []AttribStat, drift []EventCount, windows uint64) {
	if r == nil {
		return nil, nil, 0
	}
	for i := 0; i < NumAttribKeys; i++ {
		count := r.attrib.count[i].Load()
		if count == 0 {
			continue
		}
		prec, mode, class, kernel := AttribKeyLabels(i)
		st := AttribStat{
			Precision: prec, Mode: mode, ShapeClass: class, Kernel: kernel,
			Count: count,
			DurNs: r.attrib.durNs[i].Load(),
			Flops: r.attrib.flops[i].Load(),
		}
		var hist [NumAttribBuckets]uint64
		for b := range hist {
			hist[b] = r.attrib.hist[i][b].Load()
		}
		if st.DurNs > 0 {
			st.MeanGFLOPS = float64(st.Flops) / float64(st.DurNs)
		}
		st.P50GFLOPS = AttribQuantile(&hist, 0.50)
		st.P99GFLOPS = AttribQuantile(&hist, 0.99)
		stats = append(stats, st)
	}
	for c := 0; c < int(numShapeClasses); c++ {
		if n := r.attrib.drift[c].Load(); n > 0 {
			drift = append(drift, EventCount{Name: ShapeClass(c).String(), Count: n})
		}
	}
	return stats, drift, r.attrib.windows.Load()
}
