package telemetry

import "sync/atomic"

// Autotuner metrics. The traffic-adaptive tuning loop (internal/autotune)
// reports its lifecycle here — searches launched, candidates proved and
// rejected, canary installations, promotions and reverts — so one /metrics
// scrape shows how the kernel catalogue is evolving next to the serving
// counters it optimizes. Same contract as every other section:
// nil-receiver no-op, probeAtomicWrite at each atomic write.

// Autotune event kinds, in lifecycle order.
const (
	// TuneSearch: one class search launched (candidate enumeration + model
	// scoring).
	TuneSearch uint8 = iota
	// TuneProved: a candidate cleared the full proof gate (isacheck contract
	// + symbolic family proof + vexec-vs-reference validation).
	TuneProved
	// TuneRejected: a class search ended with no candidate worth promoting
	// (none beat the incumbent's modeled throughput by the margin, or none
	// survived the proof gate).
	TuneRejected
	// TuneCanary: a proved candidate was installed as a dispatch override
	// behind a probing breaker (serving canary-shadowed traffic).
	TuneCanary
	// TunePromoted: the candidate's breaker closed — the tuned tile now
	// serves its class unshadowed.
	TunePromoted
	// TuneReverted: the candidate's breaker tripped (or an operator cleared
	// the override) — the incumbent tile was restored.
	TuneReverted
	numTuneEvents
)

var tuneNames = [numTuneEvents]string{
	"search", "proved", "rejected", "canary", "promoted", "reverted",
}

// autotuneStats is the Recorder's autotuner section.
type autotuneStats struct {
	events    [numTuneEvents]atomic.Uint64
	overrides atomic.Int64
}

// TuneEvent counts one autotuner lifecycle event.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) TuneEvent(kind uint8) {
	if r == nil || kind >= numTuneEvents {
		return
	}
	probeAtomicWrite()
	r.autotune.events[kind].Add(1)
}

// TuneOverrides moves the installed-overrides gauge by delta (+1 on
// install, -1 on eviction).
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) TuneOverrides(delta int64) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.autotune.overrides.Add(delta)
}

// AutotuneStats is the aggregated autotuner section of a Snapshot.
type AutotuneStats struct {
	// Events counts autotuner lifecycle events by kind (search, proved,
	// rejected, canary, promoted, reverted); only fired kinds appear.
	Events []EventCount `json:"events,omitempty"`
	// Overrides is the point-in-time gauge of installed dispatch overrides.
	Overrides int64 `json:"overrides"`
}

// Active reports whether the autotuner ever recorded anything, so processes
// without the loop keep their exposition unchanged.
func (s AutotuneStats) Active() bool {
	return len(s.Events) != 0 || s.Overrides != 0
}

// Count returns the count of one named autotune event (zero if it never
// fired).
func (s AutotuneStats) Count(name string) uint64 {
	for _, e := range s.Events {
		if e.Name == name {
			return e.Count
		}
	}
	return 0
}

// autotuneSnapshot reads the autotuner section.
func (r *Recorder) autotuneSnapshot() AutotuneStats {
	var s AutotuneStats
	for k := uint8(0); k < numTuneEvents; k++ {
		if c := r.autotune.events[k].Load(); c > 0 {
			s.Events = append(s.Events, EventCount{Name: tuneNames[k], Count: c})
		}
	}
	s.Overrides = r.autotune.overrides.Load()
	return s
}
