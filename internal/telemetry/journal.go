package telemetry

import "sync/atomic"

// Journal metrics. The tamper-evident request journal (internal/journal)
// reports its appends, anchors, segment seals, and fsyncs here so one
// /metrics scrape shows journal volume and durability cadence next to the
// serving counters it records. Same contract as every other section:
// nil-receiver no-op, probeAtomicWrite at each atomic write.

// journalStats is the Recorder's journal section.
type journalStats struct {
	records atomic.Uint64
	bytes   atomic.Uint64
	anchors atomic.Uint64
	sealed  atomic.Uint64
	fsyncs  atomic.Uint64
}

// JournalRecord counts one journal record appended in a frame of the given
// size.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) JournalRecord(frameBytes int) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.journal.records.Add(1)
	probeAtomicWrite()
	r.journal.bytes.Add(uint64(frameBytes))
}

// JournalAnchor counts one anchor record — a merkle root committed to the
// chain — appended in a frame of the given size.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) JournalAnchor(frameBytes int) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.journal.anchors.Add(1)
	probeAtomicWrite()
	r.journal.bytes.Add(uint64(frameBytes))
}

// JournalSegmentSealed counts one segment sealed (rotation or close).
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) JournalSegmentSealed() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.journal.sealed.Add(1)
}

// JournalFsync counts one fsync of the active segment file.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) JournalFsync() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.journal.fsyncs.Add(1)
}

// JournalStats is the aggregated journal section of a Snapshot.
type JournalStats struct {
	// Records counts event records appended (anchors excluded); Bytes sums
	// every appended frame, anchors included.
	Records uint64 `json:"records"`
	Bytes   uint64 `json:"bytes"`
	// Anchors counts merkle anchors committed to the chain; Sealed counts
	// segments closed by a sealed anchor; Fsyncs counts explicit syncs of
	// the active segment.
	Anchors uint64 `json:"anchors"`
	Sealed  uint64 `json:"sealed"`
	Fsyncs  uint64 `json:"fsyncs"`
}

// Active reports whether the journal ever recorded anything, so
// journal-less processes keep their exposition unchanged.
func (s JournalStats) Active() bool {
	return s.Records != 0 || s.Anchors != 0
}

// journalSnapshot reads the journal section.
func (r *Recorder) journalSnapshot() JournalStats {
	return JournalStats{
		Records: r.journal.records.Load(),
		Bytes:   r.journal.bytes.Load(),
		Anchors: r.journal.anchors.Load(),
		Sealed:  r.journal.sealed.Load(),
		Fsyncs:  r.journal.fsyncs.Load(),
	}
}
