package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler returns the opt-in live-exposition endpoint for a recorder:
//
//	GET /metrics   Prometheus text format
//	GET /snapshot  the Snapshot as JSON
//	GET /trace     Chrome trace_event JSON (load in chrome://tracing or
//	               ui.perfetto.dev)
//
// The handler is read-only and safe to serve while GEMM traffic is in
// flight. Callers mount it on whatever mux/port their service policy
// allows; the library never opens a listener itself.
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.Snapshot().WritePrometheus(w)
		_ = WriteRuntimeMetrics(w) // sampled here, on scrape, never per call
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if _, err := r.WriteTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	})
	return mux
}
