package telemetry

import "sync/atomic"

// Router-tier metrics. The sharded router (internal/router) fronts N
// shalom-serve backends with class-affine rendezvous routing, hedged
// retries and outlier ejection; these counters make the fleet's failure
// handling observable: how many requests were forwarded, how many attempts
// the hedging/retry machinery spent on them, and how the ejection state
// machine moved. They live on the Recorder so the router's one /metrics
// scrape exposes them next to any local driver metrics, and follow the same
// contract as every other site: nil-receiver no-op, probeAtomicWrite at
// each atomic write.

// routerStats is the Recorder's router-tier section.
type routerStats struct {
	forwarded atomic.Uint64
	attempts  atomic.Uint64
	retries   atomic.Uint64
	hedges    atomic.Uint64
	shed      atomic.Uint64
	errors    atomic.Uint64
	rejected  atomic.Uint64

	ejections    atomic.Uint64
	readmissions atomic.Uint64
	probes       atomic.Uint64
	probeFails   atomic.Uint64

	backendsEligible atomic.Int64
	backendsEjected  atomic.Int64
}

// RouterForwarded counts one request answered 200 off a backend.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterForwarded() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.forwarded.Add(1)
}

// RouterAttempt counts one forward attempt to a backend (first tries,
// retries and hedges all included).
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterAttempt() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.attempts.Add(1)
}

// RouterRetry counts one failure-triggered re-attempt on the
// next-preferred backend (the hedged-retry path after a 5xx, shed, or
// connect failure).
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterRetry() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.retries.Add(1)
}

// RouterHedge counts one latency-triggered concurrent attempt: the
// preferred backend had not answered within the hedge delay, so a second
// attempt raced it on the next-preferred backend.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterHedge() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.hedges.Add(1)
}

// RouterShed counts one request the router itself answered 429/503 —
// every eligible backend shed it or none was available.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterShed() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.shed.Add(1)
}

// RouterError counts one request the router answered 502/504 after
// exhausting its retry budget or its deadline.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterError() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.errors.Add(1)
}

// RouterRejected counts one request refused at the router's own decode
// step (malformed header — HTTP 400 without touching a backend).
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterRejected() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.rejected.Add(1)
}

// RouterEjection counts one backend ejected by the outlier state machine
// (consecutive failures crossed the threshold).
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterEjection() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.ejections.Add(1)
}

// RouterReadmission counts one ejected backend readmitted after a
// successful backoff probe.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterReadmission() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.readmissions.Add(1)
}

// RouterProbe counts one readiness probe and its verdict.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterProbe(ok bool) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.probes.Add(1)
	if !ok {
		probeAtomicWrite()
		r.router.probeFails.Add(1)
	}
}

// RouterBackends sets the fleet-state gauges: how many backends are
// currently eligible for routing and how many sit ejected.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) RouterBackends(eligible, ejected int) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.router.backendsEligible.Store(int64(eligible))
	probeAtomicWrite()
	r.router.backendsEjected.Store(int64(ejected))
}

// RouterStats is the aggregated router-tier section of a Snapshot.
type RouterStats struct {
	// Forwarded counts 200s relayed off a backend; Attempts every forward
	// attempt (so Attempts-Forwarded bounds the wasted work); Retries
	// failure-triggered re-attempts and Hedges latency-triggered concurrent
	// attempts.
	Forwarded uint64 `json:"forwarded"`
	Attempts  uint64 `json:"attempts"`
	Retries   uint64 `json:"retries"`
	Hedges    uint64 `json:"hedges"`
	// Shed counts router-level 429/503 answers, Errors router-level 502/504
	// answers, Rejected router-level 400s.
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`
	Rejected uint64 `json:"rejected"`
	// Ejections/Readmissions count the outlier state machine's transitions;
	// Probes/ProbeFails the active readiness probe verdicts.
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
	Probes       uint64 `json:"probes"`
	ProbeFails   uint64 `json:"probe_fails"`
	// BackendsEligible/BackendsEjected are point-in-time fleet gauges.
	BackendsEligible int64 `json:"backends_eligible"`
	BackendsEjected  int64 `json:"backends_ejected"`
}

// Active reports whether any router-tier event was ever recorded, so
// non-router snapshots keep their exposition unchanged.
func (s RouterStats) Active() bool {
	return s.Attempts != 0 || s.Probes != 0 || s.Rejected != 0 || s.Shed != 0
}

// routerSnapshot reads the router-tier section.
func (r *Recorder) routerSnapshot() RouterStats {
	return RouterStats{
		Forwarded:        r.router.forwarded.Load(),
		Attempts:         r.router.attempts.Load(),
		Retries:          r.router.retries.Load(),
		Hedges:           r.router.hedges.Load(),
		Shed:             r.router.shed.Load(),
		Errors:           r.router.errors.Load(),
		Rejected:         r.router.rejected.Load(),
		Ejections:        r.router.ejections.Load(),
		Readmissions:     r.router.readmissions.Load(),
		Probes:           r.router.probes.Load(),
		ProbeFails:       r.router.probeFails.Load(),
		BackendsEligible: r.router.backendsEligible.Load(),
		BackendsEjected:  r.router.backendsEjected.Load(),
	}
}
