package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters for calls/faults/degradations, native
// log-bucketed histograms for latency and achieved GFLOPS, and gauges for
// the pool and thread-policy state. Output is deterministic: keys appear in
// dense-index order.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}

	bw.printf("# HELP libshalom_gemm_calls_total GEMM calls by precision, mode, shape class, kernel path and outcome.\n")
	bw.printf("# TYPE libshalom_gemm_calls_total counter\n")
	for _, c := range s.Calls {
		bw.printf("libshalom_gemm_calls_total%s %d\n", c.labels(""), c.Count)
	}

	bw.printf("# HELP libshalom_gemm_latency_seconds GEMM call latency, log2-bucketed.\n")
	bw.printf("# TYPE libshalom_gemm_latency_seconds histogram\n")
	for _, c := range s.Calls {
		var cum uint64
		for b, n := range c.LatencyBuckets {
			cum += n
			if n == 0 && b != len(c.LatencyBuckets)-1 {
				continue
			}
			le := strconv.FormatFloat(float64(uint64(1)<<uint(b))/1e9, 'g', -1, 64)
			bw.printf("libshalom_gemm_latency_seconds_bucket%s %d\n", c.labels(le), cum)
		}
		bw.printf("libshalom_gemm_latency_seconds_bucket%s %d\n", c.labels("+Inf"), cum)
		bw.printf("libshalom_gemm_latency_seconds_sum%s %g\n", c.labels(""), float64(c.DurNs)/1e9)
		bw.printf("libshalom_gemm_latency_seconds_count%s %d\n", c.labels(""), cum)
	}

	bw.printf("# HELP libshalom_gemm_gflops Achieved GFLOPS per call, log2-bucketed on quarter-GFLOPS.\n")
	bw.printf("# TYPE libshalom_gemm_gflops histogram\n")
	for _, c := range s.Calls {
		var cum uint64
		for b, n := range c.GFLOPSBuckets {
			cum += n
			if n == 0 && b != len(c.GFLOPSBuckets)-1 {
				continue
			}
			le := strconv.FormatFloat(float64(uint64(1)<<uint(b))/4, 'g', -1, 64)
			bw.printf("libshalom_gemm_gflops_bucket%s %d\n", c.labels(le), cum)
		}
		bw.printf("libshalom_gemm_gflops_bucket%s %d\n", c.labels("+Inf"), cum)
		bw.printf("libshalom_gemm_gflops_sum%s %g\n", c.labels(""), c.MeanGFLOPS()*float64(cum))
		bw.printf("libshalom_gemm_gflops_count%s %d\n", c.labels(""), cum)
	}

	gauge := func(name, help string, v any) {
		bw.printf("# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		bw.printf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("libshalom_pool_tasks_queued_total", "Tasks submitted to the worker pool.", s.Pool.TasksQueued)
	counter("libshalom_pool_tasks_started_total", "Tasks begun by pool workers.", s.Pool.TasksStarted)
	counter("libshalom_pool_tasks_done_total", "Tasks completed by pool workers.", s.Pool.TasksDone)
	gauge("libshalom_pool_tasks_in_flight", "Tasks started but not yet finished.", s.Pool.InFlight)
	counter("libshalom_pool_queue_wait_seconds_total_ns", "Summed task queue wait in nanoseconds.", s.Pool.QueueWaitNs)
	counter("libshalom_pool_worker_busy_seconds_total_ns", "Summed task execution time in nanoseconds.", s.Pool.BusyNs)
	counter("libshalom_threads_policy_calls_total", "Calls routed through the thread policy.", s.Threads.Calls)
	counter("libshalom_threads_requested_total", "Summed requested thread widths.", s.Threads.RequestedSum)
	counter("libshalom_threads_chosen_total", "Summed chosen thread widths.", s.Threads.ChosenSum)
	counter("libshalom_threads_clamped_calls_total", "Calls whose width the small-GEMM policy clamped.", s.Threads.ClampedCalls)

	bw.printf("# HELP libshalom_fault_events_total Fired fault-injection points.\n")
	bw.printf("# TYPE libshalom_fault_events_total counter\n")
	for _, f := range s.Faults {
		bw.printf("libshalom_fault_events_total{point=%q} %d\n", f.Name, f.Count)
	}
	bw.printf("# HELP libshalom_degradation_events_total Kernel-path demotions observed by the runtime.\n")
	bw.printf("# TYPE libshalom_degradation_events_total counter\n")
	for _, d := range s.Degradations {
		bw.printf("libshalom_degradation_events_total{reason=%q} %d\n", d.Name, d.Count)
	}
	bw.printf("# HELP libshalom_heal_events_total Self-healing events: breaker lifecycle, canary verdicts, watchdog conversions, transient retries.\n")
	bw.printf("# TYPE libshalom_heal_events_total counter\n")
	for _, h := range s.Heal {
		bw.printf("libshalom_heal_events_total{event=%q} %d\n", h.Name, h.Count)
	}
	if len(s.Attrib) > 0 {
		bw.printf("# HELP libshalom_attrib_calls_total Clean (outcome ok) calls feeding the attribution sketch.\n")
		bw.printf("# TYPE libshalom_attrib_calls_total counter\n")
		for _, a := range s.Attrib {
			bw.printf("libshalom_attrib_calls_total%s %d\n", a.labels(""), a.Count)
		}
		bw.printf("# HELP libshalom_attrib_gflops Achieved GFLOPS from the fine attribution sketch (stat: mean, p50, p99).\n")
		bw.printf("# TYPE libshalom_attrib_gflops gauge\n")
		for _, a := range s.Attrib {
			bw.printf("libshalom_attrib_gflops%s %g\n", a.labels("mean"), a.MeanGFLOPS)
			bw.printf("libshalom_attrib_gflops%s %g\n", a.labels("p50"), a.P50GFLOPS)
			bw.printf("libshalom_attrib_gflops%s %g\n", a.labels("p99"), a.P99GFLOPS)
		}
	}
	if len(s.AttribDrift) > 0 {
		bw.printf("# HELP libshalom_attrib_drift_events_total Drift events the attribution engine emitted, by shape class.\n")
		bw.printf("# TYPE libshalom_attrib_drift_events_total counter\n")
		for _, d := range s.AttribDrift {
			bw.printf("libshalom_attrib_drift_events_total{shape_class=%q} %d\n", d.Name, d.Count)
		}
	}
	counter("libshalom_attrib_windows_total", "Completed attribution windows.", s.AttribWindows)
	gauge("libshalom_breakers_open", "Circuit breakers currently open (reference path in use), as observed through this recorder.", s.BreakersOpen)
	gauge("libshalom_breakers_probing", "Circuit breakers currently probing (canary re-promotion in progress), as observed through this recorder.", s.BreakersProbing)
	counter("libshalom_trace_spans_total", "Phase spans recorded into the trace ring.", s.TraceSpans)
	counter("libshalom_trace_spans_dropped_total", "Spans overwritten by ring wraparound.", s.TraceDropped)

	if s.Server.Active() {
		sv := s.Server
		counter("libshalom_server_requests_accepted_total", "Requests admitted into a coalescing queue.", sv.Accepted)
		counter("libshalom_server_requests_shed_total", "Requests refused by admission control (HTTP 429).", sv.Shed)
		counter("libshalom_server_requests_expired_total", "Admitted requests dropped before flush on an already-passed deadline.", sv.Expired)
		counter("libshalom_server_requests_rejected_total", "Requests refused at decode time (HTTP 400).", sv.Rejected)
		counter("libshalom_server_coalesced_requests_total", "Requests that shared a flush with at least one other request.", sv.Coalesced)
		bw.printf("# HELP libshalom_server_batch_size Coalescer flush sizes, log2-bucketed.\n")
		bw.printf("# TYPE libshalom_server_batch_size histogram\n")
		var cum uint64
		for b, n := range sv.BatchSizeBuckets {
			cum += n
			if n == 0 && b != len(sv.BatchSizeBuckets)-1 {
				continue
			}
			bw.printf("libshalom_server_batch_size_bucket{le=%q} %d\n",
				strconv.FormatUint(uint64(1)<<uint(b), 10), cum)
		}
		bw.printf("libshalom_server_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
		bw.printf("libshalom_server_batch_size_count %d\n", cum)
		bw.printf("# HELP libshalom_server_queue_wait_seconds Request wait in the coalescing queue, log2-bucketed.\n")
		bw.printf("# TYPE libshalom_server_queue_wait_seconds histogram\n")
		cum = 0
		for b, n := range sv.QueueWaitBuckets {
			cum += n
			if n == 0 && b != len(sv.QueueWaitBuckets)-1 {
				continue
			}
			le := strconv.FormatFloat(float64(uint64(1)<<uint(b))/1e9, 'g', -1, 64)
			bw.printf("libshalom_server_queue_wait_seconds_bucket{le=%q} %d\n", le, cum)
		}
		bw.printf("libshalom_server_queue_wait_seconds_bucket{le=\"+Inf\"} %d\n", cum)
		bw.printf("libshalom_server_queue_wait_seconds_sum %g\n", float64(sv.QueueWaitNs)/1e9)
		bw.printf("libshalom_server_queue_wait_seconds_count %d\n", cum)
	}
	if s.Router.Active() {
		rt := s.Router
		counter("libshalom_router_requests_forwarded_total", "Requests answered 200 off a backend.", rt.Forwarded)
		counter("libshalom_router_attempts_total", "Forward attempts to backends (first tries, retries and hedges).", rt.Attempts)
		counter("libshalom_router_retries_total", "Failure-triggered re-attempts on the next-preferred backend.", rt.Retries)
		counter("libshalom_router_hedges_total", "Latency-triggered concurrent attempts on the next-preferred backend.", rt.Hedges)
		counter("libshalom_router_requests_shed_total", "Requests the router answered 429/503 (no backend admitted them).", rt.Shed)
		counter("libshalom_router_requests_error_total", "Requests the router answered 502/504 after exhausting retries or deadline.", rt.Errors)
		counter("libshalom_router_requests_rejected_total", "Requests refused at the router's decode step (HTTP 400).", rt.Rejected)
		counter("libshalom_router_ejections_total", "Backends ejected by the outlier state machine.", rt.Ejections)
		counter("libshalom_router_readmissions_total", "Ejected backends readmitted after a successful backoff probe.", rt.Readmissions)
		counter("libshalom_router_probes_total", "Readiness probes issued to backends.", rt.Probes)
		counter("libshalom_router_probe_failures_total", "Readiness probes that failed (connect error or non-ready status).", rt.ProbeFails)
		gauge("libshalom_router_backends_eligible", "Backends currently eligible for routing (healthy and ready).", rt.BackendsEligible)
		gauge("libshalom_router_backends_ejected", "Backends currently ejected by the outlier state machine.", rt.BackendsEjected)
	}
	if s.Autotune.Active() {
		at := s.Autotune
		bw.printf("# HELP libshalom_autotune_events_total Autotuner lifecycle events: searches, proofs, rejections, canaries, promotions, reverts.\n")
		bw.printf("# TYPE libshalom_autotune_events_total counter\n")
		for _, e := range at.Events {
			bw.printf("libshalom_autotune_events_total{event=%q} %d\n", e.Name, e.Count)
		}
		gauge("libshalom_autotune_overrides", "Tuned dispatch overrides currently installed.", at.Overrides)
	}
	if s.Journal.Active() {
		jn := s.Journal
		counter("libshalom_journal_records_total", "Event records appended to the request journal.", jn.Records)
		counter("libshalom_journal_bytes_total", "Bytes appended to the request journal, frames included.", jn.Bytes)
		counter("libshalom_journal_anchors_total", "Merkle anchors committed to the journal chain.", jn.Anchors)
		counter("libshalom_journal_segments_sealed_total", "Journal segments closed by a sealed anchor.", jn.Sealed)
		counter("libshalom_journal_fsyncs_total", "Explicit fsyncs of the active journal segment.", jn.Fsyncs)
	}
	return bw.err
}

// labels renders the key's label set; le, when non-empty, is appended as a
// histogram bucket boundary.
func (c CallStat) labels(le string) string {
	s := fmt.Sprintf(`{precision=%q,mode=%q,shape_class=%q,kernel=%q,outcome=%q`,
		c.Precision, c.Mode, c.ShapeClass, c.Kernel, c.Outcome)
	if le != "" {
		s += fmt.Sprintf(",le=%q", le)
	}
	return s + "}"
}

// labels renders an attribution key's label set; stat, when non-empty, is
// appended as the statistic selector of the gflops gauge family.
func (a AttribStat) labels(stat string) string {
	s := fmt.Sprintf(`{precision=%q,mode=%q,shape_class=%q,kernel=%q`,
		a.Precision, a.Mode, a.ShapeClass, a.Kernel)
	if stat != "" {
		s += fmt.Sprintf(",stat=%q", stat)
	}
	return s + "}"
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// PublishExpvar publishes the recorder under the given expvar name; the
// standard /debug/vars endpoint then serves the live Snapshot as JSON.
// expvar panics on duplicate names, so publish once per process per name.
func PublishExpvar(name string, r *Recorder) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
