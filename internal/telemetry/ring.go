package telemetry

import "sync"

// Trace phases, in the order the driver passes through them. Phase spans
// nest: a gemm call span encloses plan and barrier spans on the caller's
// lane; each block span encloses its pack and kernel-batch spans on the
// executing worker's lane.
const (
	PhaseCall uint8 = iota
	PhasePlan
	PhaseBarrier
	PhaseBlock
	PhasePack
	PhaseKernelBatch
	numPhases
)

var phaseNames = [numPhases]string{
	"gemm", "plan", "barrier", "block", "pack", "kernel-batch",
}

// PhaseName returns the trace_event name of a phase.
func PhaseName(p uint8) string {
	if p < numPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// event is one completed span. Spans are recorded at completion (begin
// timestamp plus duration), so the ring never holds half-open spans and the
// exporter can always emit balanced B/E pairs.
type event struct {
	start, dur int64 // ns since the recorder epoch
	m, n, k    int32
	tid        int32
	phase      uint8
	mode       uint8
	prec       uint8
}

// ring is a fixed-capacity span buffer that overwrites its oldest entries:
// tracing a long-running service keeps the most recent window instead of
// growing without bound. A mutex serializes writers; spans are recorded at
// block/phase granularity (not per micro-tile), so contention is far off
// the critical path, and the mutex makes the concurrent read in snapshot
// exact under the race detector.
type ring struct {
	mu      sync.Mutex
	buf     []event
	written uint64 // total spans ever recorded
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]event, 0, capacity)}
}

func (r *ring) add(ev event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = r.buf[:len(r.buf)+1]
	}
	r.buf[r.written%uint64(cap(r.buf))] = ev
	r.written++
	r.mu.Unlock()
}

// snapshot copies the buffered spans out (unordered) and reports the total
// recorded and dropped-by-overwrite counts.
func (r *ring) snapshot() (evs []event, written, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	evs = make([]event, len(r.buf))
	copy(evs, r.buf)
	if over := r.written - uint64(len(r.buf)); over > 0 {
		dropped = over
	}
	return evs, r.written, dropped
}
