package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export: every buffered span becomes one B/E pair in
// the JSON Array Format with an enclosing {"traceEvents": ...} object, the
// layout chrome://tracing and Perfetto load directly. Timestamps are
// microseconds (fractional) since the recorder epoch; lanes (tid) are
// worker indices plus per-call caller lanes, so the span tree renders
// plan → pack → block → kernel-batch nesting per lane.

// traceEvent is one exported trace_event record.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports the buffered spans as Chrome trace_event JSON. The
// export is a consistent copy: spans recorded concurrently with the export
// are either wholly present or wholly absent. Returns the number of spans
// exported.
func (r *Recorder) WriteTrace(w io.Writer) (int, error) {
	if r == nil || r.trace == nil {
		return 0, fmt.Errorf("telemetry: tracing disabled")
	}
	evs, _, _ := r.trace.snapshot()

	// Emit B and E records globally sorted by timestamp. Ties are ordered
	// so nesting survives: ends before begins (a span closing at t must
	// close before a sibling opens at t), inner ends before outer ends
	// (later start first), outer begins before inner begins (longer
	// duration first).
	type item struct {
		ts    int64
		end   bool
		start int64
		dur   int64
		level int
		ev    int
	}
	items := make([]item, 0, 2*len(evs))
	for i, ev := range evs {
		lv := phaseLevel(ev.phase)
		items = append(items, item{ts: ev.start, start: ev.start, dur: ev.dur, level: lv, ev: i})
		items = append(items, item{ts: ev.start + ev.dur, end: true, start: ev.start, dur: ev.dur, level: lv, ev: i})
	}
	sort.SliceStable(items, func(a, b int) bool {
		x, y := items[a], items[b]
		if x.ts != y.ts {
			return x.ts < y.ts
		}
		if x.end != y.end {
			return x.end
		}
		if x.end { // inner closes first: deeper level, then later start
			if x.level != y.level {
				return x.level > y.level
			}
			return x.start > y.start
		}
		// outer opens first: shallower level, then longer duration
		if x.level != y.level {
			return x.level < y.level
		}
		return x.dur > y.dur
	})

	out := traceFile{DisplayTimeUnit: "ns", TraceEvents: make([]traceEvent, 0, len(items))}
	for _, it := range items {
		ev := evs[it.ev]
		te := traceEvent{
			Name: spanName(ev),
			Cat:  "libshalom",
			Ph:   "B",
			TS:   float64(it.ts) / 1e3,
			PID:  1,
			TID:  ev.tid,
		}
		if it.end {
			te.Ph = "E"
		} else if ev.phase == PhaseCall || ev.phase == PhaseBlock {
			te.Args = map[string]any{"m": ev.m, "n": ev.n, "k": ev.k, "mode": modeNames[ev.mode%numMode]}
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return len(evs), enc.Encode(out)
}

// phaseLevel is the static nesting depth of a phase, used to order
// same-timestamp begins/ends so the exported tree stays properly nested
// even when clock granularity collapses a parent and child onto one tick.
func phaseLevel(p uint8) int {
	switch p {
	case PhaseCall:
		return 0
	case PhasePlan, PhaseBarrier:
		return 1
	case PhaseBlock:
		return 2
	default: // pack, kernel-batch
		return 3
	}
}

func spanName(ev event) string {
	switch ev.phase {
	case PhaseCall:
		return fmt.Sprintf("gemm %s %s %dx%dx%d",
			modeNames[ev.mode%numMode], precNames[ev.prec%numPrec], ev.m, ev.n, ev.k)
	case PhaseBlock:
		return fmt.Sprintf("block %dx%d", ev.m, ev.n)
	default:
		return PhaseName(ev.phase)
	}
}

// ValidateTrace checks an exported trace against the trace_event contract
// the exporter promises: well-formed JSON in the object-wrapped array
// format, every record carrying name/ph/ts/tid, per-lane timestamps
// monotonically non-decreasing, and B/E records forming balanced,
// name-matched pairs per lane. Used by `make trace-smoke` and the trace
// tests; returns nil on a conforming trace.
func ValidateTrace(rd io.Reader) error {
	var tf struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			TS   *float64 `json:"ts"`
			TID  *int32   `json:"tid"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&tf); err != nil {
		return fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	if tf.TraceEvents == nil {
		return fmt.Errorf("telemetry: trace has no traceEvents array")
	}
	type open struct {
		name string
		ts   float64
	}
	stacks := map[int32][]open{}
	lastTS := map[int32]float64{}
	for i, ev := range tf.TraceEvents {
		if ev.Name == nil || ev.Ph == nil || ev.TS == nil || ev.TID == nil {
			return fmt.Errorf("telemetry: event %d missing name/ph/ts/tid", i)
		}
		tid := *ev.TID
		if prev, ok := lastTS[tid]; ok && *ev.TS < prev {
			return fmt.Errorf("telemetry: event %d: timestamp %v precedes %v on lane %d", i, *ev.TS, prev, tid)
		}
		lastTS[tid] = *ev.TS
		switch *ev.Ph {
		case "B":
			stacks[tid] = append(stacks[tid], open{name: *ev.Name, ts: *ev.TS})
		case "E":
			st := stacks[tid]
			if len(st) == 0 {
				return fmt.Errorf("telemetry: event %d: E %q on lane %d with no open B", i, *ev.Name, tid)
			}
			top := st[len(st)-1]
			if top.name != *ev.Name {
				return fmt.Errorf("telemetry: event %d: E %q does not match open B %q on lane %d", i, *ev.Name, top.name, tid)
			}
			stacks[tid] = st[:len(st)-1]
		default:
			return fmt.Errorf("telemetry: event %d: unsupported phase %q", i, *ev.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			return fmt.Errorf("telemetry: lane %d ends with %d unbalanced B events (first %q)", tid, len(st), st[0].name)
		}
	}
	return nil
}
