package journal

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
	"time"

	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/mat"
)

// open is the test harness around Open with small segments and t.Cleanup.
func open(t *testing.T, dir string, o Options) *Writer {
	t.Helper()
	o.Dir = dir
	w, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// fillBatch journals one admitted-request batch (admit, flush, result) and
// anchors it, returning the admit seq.
func fillBatch(t *testing.T, w *Writer, payload []byte) uint64 {
	t.Helper()
	seq := w.Admit(time.Now(), []byte(`{"precision":"f32","mode":"NN","m":4,"n":4,"k":4,"alpha":1}`), payload)
	if seq == 0 {
		t.Fatalf("Admit returned 0 on an enabled journal (status: %+v)", w.Status())
	}
	w.Flush("f32/NN/small", 1, 128)
	w.Result(seq, 200, 1, sha256.Sum256([]byte("result")))
	w.Anchor()
	return seq
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir, Options{CapturePayloads: true})
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	seq := fillBatch(t, w, payload)
	w.Breaker(guard.Degradation{
		Platform: "kp920", Kernel: guard.PathF32,
		Reason: guard.ReasonNumeric, Detail: "NaN in C", Shape: "NN 4x4x4",
		Seq: 1, Trips: 1,
	}, guard.StateHealthy, guard.StateOpen)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if !rep.OK {
		t.Fatalf("fresh journal fails verification: %v", rep.Errs)
	}
	if rep.Records != 4 {
		t.Errorf("verified %d records, want 4 (admit, flush, result, breaker)", rep.Records)
	}

	events, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var kinds []Kind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
		switch e.Kind {
		case KindAdmit:
			if e.Seq != seq {
				t.Errorf("admit seq %d, want %d", e.Seq, seq)
			}
			if !e.HasPayload || string(e.Payload) != string(payload) {
				t.Errorf("admit payload %v, want %v captured", e.Payload, payload)
			}
			if e.PayloadHash != sha256.Sum256(payload) {
				t.Error("admit payload hash does not match the payload")
			}
		case KindResult:
			if e.AdmitSeq != seq || e.Status != 200 || e.BatchSize != 1 {
				t.Errorf("result event %+v, want admit_seq %d status 200 batch 1", e, seq)
			}
		case KindBreaker:
			if e.Platform != "kp920" || e.From != "healthy" || e.To != "open" || e.Reason != string(guard.ReasonNumeric) {
				t.Errorf("breaker event %+v", e)
			}
		}
	}
	want := []Kind{KindSegmentHeader, KindAdmit, KindFlush, KindResult, KindAnchor, KindBreaker, KindAnchor}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds %v, want %v", kinds, want)
		}
	}
}

func TestNilWriterNoOps(t *testing.T) {
	var w *Writer
	if w.Enabled() {
		t.Error("nil writer reports enabled")
	}
	if seq := w.Admit(time.Now(), []byte("h"), []byte("p")); seq != 0 {
		t.Errorf("nil Admit returned %d, want 0", seq)
	}
	w.Result(1, 200, 1, [32]byte{})
	w.Flush("c", 1, 1)
	w.Breaker(guard.Degradation{}, guard.StateHealthy, guard.StateOpen)
	w.Anchor()
	if obs := w.GuardObserver(); obs != nil {
		t.Error("nil writer's GuardObserver is non-nil")
	}
	if err := w.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if s := w.Status(); s != (Status{}) {
		t.Errorf("nil Status = %+v, want zero", s)
	}
}

// TestDisabledJournalAllocFree pins the zero-cost-when-disabled contract:
// the exact calls the serving admission path makes against a nil journal
// must not allocate.
func TestDisabledJournalAllocFree(t *testing.T) {
	var w *Writer
	allocs := testing.AllocsPerRun(200, func() {
		if w.Enabled() {
			t.Fatal("nil writer enabled")
		}
		_ = w.Admit(time.Time{}, nil, nil)
		w.Result(0, 200, 1, [32]byte{})
		w.Flush("", 0, 0)
		w.Anchor()
	})
	if allocs != 0 {
		t.Errorf("disabled journal path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every anchor overflows the budget and rotates.
	w := open(t, dir, Options{SegmentBytes: 256, CapturePayloads: true})
	payload := make([]byte, 128)
	for i := 0; i < 5; i++ {
		fillBatch(t, w, payload)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	paths, _, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(paths))
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("rotated journal fails verification: %v", rep.Errs)
	}
	for i, s := range rep.Segments {
		if i < len(rep.Segments)-1 && !s.Sealed {
			t.Errorf("segment %d unsealed mid-journal", s.Index)
		}
	}
}

func TestReopenContinuesChain(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir, Options{})
	fillBatch(t, w, []byte("one"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	head1 := w.ChainHead()

	// A clean reopen starts the next segment on the sealed chain head.
	w2 := open(t, dir, Options{})
	if w2.ChainHead() != head1 {
		t.Fatalf("reopen chain head %x, want the sealed head %x", w2.ChainHead(), head1)
	}
	fillBatch(t, w2, []byte("two"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("reopened journal fails verification: %v", rep.Errs)
	}
	if len(rep.Segments) != 2 {
		t.Fatalf("expected 2 segments after reopen, got %d", len(rep.Segments))
	}
}

// TestCrashRecovery is the satellite crash test: the faults injection point
// kills the writer mid-record; reopen must truncate the torn tail, keep
// every fully-framed event, and resume a chain that verifies.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir, Options{CapturePayloads: true})
	survivor := fillBatch(t, w, []byte("survives"))
	// One anchored batch is durable; now append an unanchored (but fully
	// framed) event, then crash mid-way through the next record.
	unanchored := w.Admit(time.Now(), []byte(`{"m":1}`), []byte("framed-but-unanchored"))
	faults.Arm(faults.JournalTornWrite, 1)
	defer faults.Reset()
	if seq := w.Admit(time.Now(), []byte(`{"m":2}`), []byte("torn")); seq != 0 {
		t.Fatalf("torn-write Admit returned %d, want 0", seq)
	}
	if w.Status().Err == "" {
		t.Fatal("writer not sticky-failed after the injected torn write")
	}
	// The "crashed" process never closes cleanly; drop the writer.

	// Before recovery, verification must fail: the tail is torn.
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("verification passed on a torn journal")
	}

	// Reopen: recovery truncates the torn record and resumes.
	w2 := open(t, dir, Options{CapturePayloads: true})
	if w2.Truncated() == 0 {
		t.Fatal("recovery reports no torn-tail truncation")
	}
	resumed := fillBatch(t, w2, []byte("after-recovery"))
	if resumed <= unanchored {
		t.Errorf("post-recovery seq %d did not advance past the survivor %d", resumed, unanchored)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err = VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("recovered journal fails verification: %v", rep.Errs)
	}
	events, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, e := range events {
		if e.Kind == KindAdmit {
			got = append(got, e.Seq)
		}
	}
	if len(got) != 3 || got[0] != survivor || got[1] != unanchored || got[2] != resumed {
		t.Fatalf("surviving admits %v, want [%d %d %d] (torn admit gone, framed ones kept)",
			got, survivor, unanchored, resumed)
	}
}

// TestTamperDetection is the acceptance gate: flipping any single byte of a
// closed journal — offsets fuzzed plus targeted at the magic, frame
// preludes, payloads, and the final anchor — must fail verification.
func TestTamperDetection(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir, Options{CapturePayloads: true})
	for i := 0; i < 3; i++ {
		fillBatch(t, w, []byte{byte(i), 1, 2, 3})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, err := Segments(dir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("Segments: %v (%d)", err, len(paths))
	}
	orig, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}

	offsets := []int{0, 3, 8, 9, 12, 16, len(orig) / 2, len(orig) - 1, len(orig) - 33}
	rng := mat.NewRNG(42)
	for i := 0; i < 40; i++ {
		offsets = append(offsets, int(rng.Uint64()%uint64(len(orig))))
	}
	for _, off := range offsets {
		if off < 0 || off >= len(orig) {
			continue
		}
		tampered := make([]byte, len(orig))
		copy(tampered, orig)
		tampered[off] ^= 0x40
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, filepath.Base(paths[0])), tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyDir(tdir)
		if err != nil {
			continue // hard scan error: detection, just via the error path
		}
		if rep.OK {
			t.Errorf("flipping byte %d of %d went undetected", off, len(orig))
		}
	}
}

func TestFsyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		err  bool
	}{
		{"anchor", FsyncAnchor, false},
		{"", FsyncAnchor, false},
		{"always", FsyncAlways, false},
		{"none", FsyncNone, false},
		{"everysecond", FsyncAnchor, true},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if FsyncAlways.String() != "always" || FsyncNone.String() != "none" || FsyncAnchor.String() != "anchor" {
		t.Error("FsyncPolicy.String names wrong")
	}
}

func TestMerkleProperties(t *testing.T) {
	l1 := leafHash([]byte("a"))
	l2 := leafHash([]byte("b"))
	l3 := leafHash([]byte("c"))
	if merkleRoot([][32]byte{l1}) != l1 {
		t.Error("single-leaf root is not the leaf")
	}
	if merkleRoot([][32]byte{l1, l2}) == merkleRoot([][32]byte{l2, l1}) {
		t.Error("root insensitive to leaf order")
	}
	if merkleRoot([][32]byte{l1, l2, l3}) == merkleRoot([][32]byte{l1, l2}) {
		t.Error("root insensitive to leaf count")
	}
	if merkleRoot(nil) != sha256.Sum256([]byte{tagEmpty}) {
		t.Error("empty root is not the domain-tagged empty constant")
	}
	// Leaf/node domain separation: a leaf whose payload is two concatenated
	// hashes must not equal the interior node over those hashes.
	cat := append(append([]byte{}, l1[:]...), l2[:]...)
	if leafHash(cat) == merkleRoot([][32]byte{l1, l2}) {
		t.Error("leaf/node domains collide")
	}
	var zero [32]byte
	if chainNext(zero, l1) == chainNext(l1, zero) {
		t.Error("chain insensitive to operand order")
	}
}

// TestTuneRecords covers the autotuner's journal contract: a captured tuning
// session (promote, revert, re-promote) replays to exactly the decision
// sequence that was recorded — same classes, same tiles, same order — and a
// flipped byte inside a tune record fails verification.
func TestTuneRecords(t *testing.T) {
	type decision struct {
		kind          Kind
		class, kernel string
		mr, nr, kc    uint32
		gflops        float64
		detail        string
	}
	session := []decision{
		{KindTunePromote, "f32/small", "tuned-5x12-kc8-pipelined", 5, 12, 8, 41.7, ""},
		{KindTuneRevert, "f32/small", "tuned-5x12-kc8-pipelined", 5, 12, 8, 0, "canary mismatch: injected"},
		{KindTunePromote, "f32/small", "tuned-6x8-kc16-pipelined", 6, 8, 16, 39.2, ""},
		{KindTunePromote, "f64/medium", "tuned-4x6-kc8-pipelined", 4, 6, 8, 18.4, ""},
	}

	dir := t.TempDir()
	w := open(t, dir, Options{})
	for _, d := range session {
		if d.kind == KindTunePromote {
			w.TunePromote("kp920", d.class, d.kernel, int(d.mr), int(d.nr), int(d.kc), d.gflops)
		} else {
			w.TuneRevert("kp920", d.class, d.kernel, int(d.mr), int(d.nr), int(d.kc), d.detail)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("tuning journal fails verification: %v", rep.Errs)
	}

	// Replay: two independent reads must reproduce the identical decision
	// sequence, and it must match what the session recorded.
	for pass := 0; pass < 2; pass++ {
		events, err := ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var got []decision
		for _, e := range events {
			if e.Kind != KindTunePromote && e.Kind != KindTuneRevert {
				continue
			}
			if e.Platform != "kp920" {
				t.Errorf("tune record platform %q, want kp920", e.Platform)
			}
			got = append(got, decision{e.Kind, e.Class, e.Kernel, e.MR, e.NR, e.KC, e.GFLOPS, e.Detail})
		}
		if len(got) != len(session) {
			t.Fatalf("replay pass %d: %d tune records, want %d", pass, len(got), len(session))
		}
		for i := range session {
			if got[i] != session[i] {
				t.Fatalf("replay pass %d: decision %d = %+v, want %+v", pass, i, got[i], session[i])
			}
		}
	}

	// Tamper: flip one byte inside each tune record's payload; verification
	// must reject every one of them.
	paths, _, err := Segments(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("Segments: %v (%d)", err, len(paths))
	}
	orig, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// The kernel identity strings appear only inside tune record payloads;
	// flip a byte of each occurrence.
	for _, needle := range []string{"tuned-5x12-kc8-pipelined", "tuned-6x8-kc16-pipelined", "tuned-4x6-kc8-pipelined"} {
		off := indexOf(orig, []byte(needle))
		if off < 0 {
			t.Fatalf("tune record for %q not found in segment bytes", needle)
		}
		tampered := make([]byte, len(orig))
		copy(tampered, orig)
		tampered[off+3] ^= 0x20
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, filepath.Base(paths[0])), tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyDir(tdir)
		if err != nil {
			continue // hard scan error: detection via the error path
		}
		if rep.OK {
			t.Errorf("flipped byte inside the %q tune record went undetected", needle)
		}
	}
}

// indexOf is bytes.Index without importing bytes into this file's tight
// import set.
func indexOf(haystack, needle []byte) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}
