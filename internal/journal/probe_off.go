//go:build !telemetryprobe

package journal

// probeAtomicWrite is compiled out in normal builds; under the
// telemetryprobe build tag it counts every journal write-method entry,
// letting a test assert the journal-disabled path performs exactly zero of
// them (the nil-receiver off-path contract of DESIGN.md §12).
func probeAtomicWrite() {}
