//go:build telemetryprobe

package journal

import (
	"testing"
	"time"

	"libshalom/internal/guard"
)

// TestTelemetryProbeJournalOffPath is the dynamic twin of the shalom-vet
// nil-guard discipline on the journal's write methods: with journaling
// disabled (a nil *Writer), the admission path's journal calls must perform
// exactly zero journal writes — and with a live writer, the probe must
// move, proving the probe instruments the right sites.
func TestTelemetryProbeJournalOffPath(t *testing.T) {
	ProbeReset()
	var w *Writer
	_ = w.Enabled()
	_ = w.Admit(time.Now(), []byte("h"), []byte("p"))
	w.Result(1, 200, 1, [32]byte{})
	w.Flush("c", 1, 1)
	w.Breaker(guard.Degradation{}, guard.StateHealthy, guard.StateOpen)
	w.Anchor()
	_ = w.Close()
	if n := ProbeAtomicWrites(); n != 0 {
		t.Fatalf("disabled journal performed %d writes, want 0", n)
	}

	live, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	live.Flush("c", 1, 1)
	_ = live.Close()
	if n := ProbeAtomicWrites(); n == 0 {
		t.Fatal("probe did not move on a live writer — instrumentation lost")
	}
}
