package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode drives the record decoder with arbitrary bytes — the
// journal twin of the wire format's FuzzDecodeRequest. The decoder's
// contract under hostile input: never panic, never accept a record with
// trailing or missing bytes, and on acceptance be an exact inverse of the
// encoder — re-encoding the decoded event must reproduce the input
// byte-for-byte (the property that makes record payloads stable merkle
// leaves).
func FuzzJournalDecode(f *testing.F) {
	seed := func(e Event) { f.Add(encodeEvent(&e)) }
	seed(Event{Kind: KindSegmentHeader, Seq: 0, T: 1700000000000000000, Version: Version, Segment: 1})
	seed(Event{Kind: KindAdmit, Seq: 1, T: 2, Header: []byte(`{"precision":"f32","mode":"NN","m":4,"n":4,"k":4}`), PayloadHash: [32]byte{1}})
	seed(Event{Kind: KindAdmit, Seq: 2, T: 3, Header: []byte(`{}`), HasPayload: true, Payload: []byte{1, 2, 3, 4}})
	seed(Event{Kind: KindResult, Seq: 3, T: 4, AdmitSeq: 2, Status: 200, BatchSize: 7, ResultHash: [32]byte{9}})
	seed(Event{Kind: KindResult, Seq: 4, T: 5, AdmitSeq: 1, Status: 504})
	seed(Event{Kind: KindFlush, Seq: 5, T: 6, Class: "f32/NN/small", Size: 3, Flops: 1.5e6})
	seed(Event{Kind: KindBreaker, Seq: 6, T: 7, Platform: "kp920", Kernel: "gemm-f32", From: "healthy", To: "open", Reason: "numeric-guard", Detail: "NaN", Shape: "NN 4x4x4", GuardSeq: 1, Trips: 2})
	seed(Event{Kind: KindTunePromote, Seq: 7, T: 8, Platform: "kp920", Class: "f32/small", Kernel: "tuned-5x12-kc8", MR: 5, NR: 12, KC: 8, GFLOPS: 42.5})
	seed(Event{Kind: KindTuneRevert, Seq: 8, T: 9, Platform: "kp920", Class: "f32/small", Kernel: "tuned-5x12-kc8", Detail: "canary mismatch", MR: 5, NR: 12, KC: 8})
	seed(Event{Kind: KindAnchor, Seq: 7, T: 8, Count: 4, Root: [32]byte{1}, Chain: [32]byte{2}, Sealed: true})
	seed(Event{Kind: KindAnchor, Seq: 8, T: 9})
	// Hostile shapes: unknown kinds, truncations, length lies, bad presence
	// and seal bytes, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{byte(KindAdmit)})
	f.Add(append(encodeEvent(&Event{Kind: KindFlush, Class: "x"}), 0xaa))
	f.Add([]byte{byte(KindAdmit), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeEvent(data)
		if err != nil {
			return
		}
		round := encodeEvent(&e)
		if !bytes.Equal(round, data) {
			t.Fatalf("decode/encode round trip diverges:\n in  %x\n out %x", data, round)
		}
		if len(e.Header) > maxHeaderField {
			t.Fatalf("accepted a %d-byte header past the %d limit", len(e.Header), maxHeaderField)
		}
	})
}
