package journal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record layer: one journal event encoded as a compact little-endian
// payload, carried inside a CRC-framed record (segment.go). The encoding is
// deliberately explicit — no reflection, no JSON — so the decoder can be
// fuzzed byte-for-byte (FuzzJournalDecode) and so a record's bytes are a
// stable merkle leaf across Go versions.

// Kind discriminates the event types a journal carries.
type Kind uint8

const (
	// KindSegmentHeader is the mandatory first record of every segment:
	// format version, segment index, and the chain head inherited from the
	// previous segment (all zeros for the genesis segment).
	KindSegmentHeader Kind = 0x01
	// KindAdmit records one admitted request: canonical wire header,
	// SHA-256 of the operand payload, and — when payload capture is on —
	// the payload itself (what deterministic replay re-issues).
	KindAdmit Kind = 0x10
	// KindResult records the terminal answer of one admitted request:
	// HTTP status, flush batch size, and SHA-256 of the response payload.
	KindResult Kind = 0x11
	// KindFlush records one coalescer flush: class, batch size, flops.
	KindFlush Kind = 0x12
	// KindBreaker records one circuit-breaker transition (trip or close)
	// observed through the guard registry.
	KindBreaker Kind = 0x13
	// KindTunePromote records one autotuner promotion: a proved candidate
	// tile whose canary breaker closed now serves its shape class. Replay of
	// a captured tuning session reproduces the promotion sequence from these
	// records alone.
	KindTunePromote Kind = 0x14
	// KindTuneRevert records one autotuner revert: the candidate's breaker
	// tripped (or the operator cleared it) and the incumbent tile was
	// restored; Detail carries the reason.
	KindTuneRevert Kind = 0x15
	// KindAnchor closes a batch of events with a merkle root over their
	// record payloads, chained to the previous anchor: one hash proves the
	// whole prefix. A sealed anchor is the last record of its segment.
	KindAnchor Kind = 0x20
)

// String names the kind for dumps and errors.
func (k Kind) String() string {
	switch k {
	case KindSegmentHeader:
		return "segment-header"
	case KindAdmit:
		return "admit"
	case KindResult:
		return "result"
	case KindFlush:
		return "flush"
	case KindBreaker:
		return "breaker"
	case KindTunePromote:
		return "tune-promote"
	case KindTuneRevert:
		return "tune-revert"
	case KindAnchor:
		return "anchor"
	}
	return fmt.Sprintf("kind-0x%02x", uint8(k))
}

// Version is the on-disk format version written into segment headers.
const Version = 1

// Decode limits: a hostile record must not make the decoder build
// oversized values. The frame layer bounds total record size; these bound
// the variable-length fields inside it.
const (
	maxHeaderField = 64 << 10 // canonical wire header JSON
	maxStringField = 64 << 10 // class names, breaker strings
)

// Event is one decoded journal record. Kind selects which field groups are
// meaningful; the rest stay zero.
type Event struct {
	Kind Kind
	// Seq is the journal-wide monotonic record sequence number, assigned at
	// append time and recovered on reopen.
	Seq uint64
	// T is the event's wall-clock time in Unix nanoseconds — what replay
	// uses to reproduce original arrival spacing.
	T int64

	// Segment header fields.
	Version   uint32
	Segment   uint64
	PrevChain [32]byte

	// Admit fields. Header is the canonical wire header JSON (no trailing
	// newline); PayloadHash the SHA-256 of the operand payload bytes;
	// Payload the payload itself when capture was enabled (HasPayload).
	Header      []byte
	PayloadHash [32]byte
	HasPayload  bool
	Payload     []byte

	// Result fields. AdmitSeq references the admit record's Seq.
	AdmitSeq   uint64
	Status     int32
	BatchSize  uint32
	ResultHash [32]byte

	// Flush fields.
	Class string
	Size  uint32
	Flops float64

	// Breaker fields, mirroring guard.Degradation plus the transition.
	// TunePromote/TuneRevert reuse Platform, Kernel (the tuned identity),
	// Class and Detail.
	Platform string
	Kernel   string
	From     string
	To       string
	Reason   string
	Detail   string
	Shape    string
	GuardSeq uint64
	Trips    uint32

	// Tune fields: the candidate tile and its modeled throughput at the
	// decision point.
	MR, NR, KC uint32
	GFLOPS     float64

	// Anchor fields: Count records anchored, Root their merkle root, Chain
	// = SHA-256(prev chain ‖ Root), Sealed whether this anchor closes the
	// segment.
	Count  uint32
	Root   [32]byte
	Chain  [32]byte
	Sealed bool
}

// encodeEvent renders e as a record payload.
func encodeEvent(e *Event) []byte {
	b := make([]byte, 0, 64+len(e.Header)+len(e.Payload))
	b = append(b, byte(e.Kind))
	b = binary.LittleEndian.AppendUint64(b, e.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.T))
	switch e.Kind {
	case KindSegmentHeader:
		b = binary.LittleEndian.AppendUint32(b, e.Version)
		b = binary.LittleEndian.AppendUint64(b, e.Segment)
		b = append(b, e.PrevChain[:]...)
	case KindAdmit:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Header)))
		b = append(b, e.Header...)
		b = append(b, e.PayloadHash[:]...)
		if e.HasPayload {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Payload)))
			b = append(b, e.Payload...)
		} else {
			b = append(b, 0)
		}
	case KindResult:
		b = binary.LittleEndian.AppendUint64(b, e.AdmitSeq)
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Status))
		b = binary.LittleEndian.AppendUint32(b, e.BatchSize)
		b = append(b, e.ResultHash[:]...)
	case KindFlush:
		b = appendString(b, e.Class)
		b = binary.LittleEndian.AppendUint32(b, e.Size)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Flops))
	case KindBreaker:
		b = appendString(b, e.Platform)
		b = appendString(b, e.Kernel)
		b = appendString(b, e.From)
		b = appendString(b, e.To)
		b = appendString(b, e.Reason)
		b = appendString(b, e.Detail)
		b = appendString(b, e.Shape)
		b = binary.LittleEndian.AppendUint64(b, e.GuardSeq)
		b = binary.LittleEndian.AppendUint32(b, e.Trips)
	case KindTunePromote, KindTuneRevert:
		b = appendString(b, e.Platform)
		b = appendString(b, e.Class)
		b = appendString(b, e.Kernel)
		b = appendString(b, e.Detail)
		b = binary.LittleEndian.AppendUint32(b, e.MR)
		b = binary.LittleEndian.AppendUint32(b, e.NR)
		b = binary.LittleEndian.AppendUint32(b, e.KC)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.GFLOPS))
	case KindAnchor:
		b = binary.LittleEndian.AppendUint32(b, e.Count)
		b = append(b, e.Root[:]...)
		b = append(b, e.Chain[:]...)
		if e.Sealed {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	if len(s) > maxStringField {
		s = s[:maxStringField]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// cursor is the decode position over one record payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.fail("journal: record truncated at offset %d (want %d more bytes of %d)", c.off, n, len(c.b))
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

func (c *cursor) u8() uint8 {
	v := c.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (c *cursor) u16() uint16 {
	v := c.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

func (c *cursor) u32() uint32 {
	v := c.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (c *cursor) u64() uint64 {
	v := c.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (c *cursor) hash() (h [32]byte) {
	copy(h[:], c.take(32))
	return
}

func (c *cursor) str() string {
	n := int(c.u16())
	return string(c.take(n))
}

// decodeEvent parses one record payload. Variable-length fields reference
// the input slice (no copy); callers that retain events across buffer reuse
// must copy. The decoder never panics on hostile input and never allocates
// beyond what the (already CRC-validated and length-bounded) payload
// implies — the FuzzJournalDecode contract.
func decodeEvent(payload []byte) (Event, error) {
	c := &cursor{b: payload}
	var e Event
	e.Kind = Kind(c.u8())
	e.Seq = c.u64()
	e.T = int64(c.u64())
	switch e.Kind {
	case KindSegmentHeader:
		e.Version = c.u32()
		e.Segment = c.u64()
		e.PrevChain = c.hash()
	case KindAdmit:
		n := int(c.u32())
		if n > maxHeaderField {
			c.fail("journal: admit header %d bytes exceeds the %d limit", n, maxHeaderField)
		}
		e.Header = c.take(n)
		e.PayloadHash = c.hash()
		switch c.u8() {
		case 0:
		case 1:
			e.HasPayload = true
			e.Payload = c.take(int(c.u32()))
		default:
			c.fail("journal: admit record has invalid payload-presence byte")
		}
	case KindResult:
		e.AdmitSeq = c.u64()
		e.Status = int32(c.u32())
		e.BatchSize = c.u32()
		e.ResultHash = c.hash()
	case KindFlush:
		e.Class = c.str()
		e.Size = c.u32()
		e.Flops = math.Float64frombits(c.u64())
	case KindBreaker:
		e.Platform = c.str()
		e.Kernel = c.str()
		e.From = c.str()
		e.To = c.str()
		e.Reason = c.str()
		e.Detail = c.str()
		e.Shape = c.str()
		e.GuardSeq = c.u64()
		e.Trips = c.u32()
	case KindTunePromote, KindTuneRevert:
		e.Platform = c.str()
		e.Class = c.str()
		e.Kernel = c.str()
		e.Detail = c.str()
		e.MR = c.u32()
		e.NR = c.u32()
		e.KC = c.u32()
		e.GFLOPS = math.Float64frombits(c.u64())
	case KindAnchor:
		e.Count = c.u32()
		e.Root = c.hash()
		e.Chain = c.hash()
		switch c.u8() {
		case 0:
		case 1:
			e.Sealed = true
		default:
			c.fail("journal: anchor record has invalid seal byte")
		}
	default:
		c.fail("journal: unknown record kind 0x%02x", uint8(e.Kind))
	}
	if c.err == nil && c.off != len(payload) {
		c.err = fmt.Errorf("journal: record has %d trailing bytes after a %s event", len(payload)-c.off, e.Kind)
	}
	return e, c.err
}
