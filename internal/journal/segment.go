package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment layer: one journal segment is a file of CRC-framed records,
//
//	magic (8 bytes)
//	frame: [u32 payload length][u32 CRC-32C of payload][payload]
//	frame: …
//
// whose first record is a KindSegmentHeader and whose last — once sealed —
// is a sealed KindAnchor. The CRC frame is the crash-safety boundary: a
// torn write (power cut mid-frame) leaves an incomplete or CRC-failing
// tail, which reopen truncates; every fully-framed record before it
// survives. Tamper evidence is the anchor chain's job (merkle.go, verify.go)
// — a CRC can be recomputed by an editor, a chained merkle root cannot.

// Magic is the 8-byte segment file preamble.
const Magic = "SHLMJNL1"

// maxRecordBytes bounds one record payload; DecodeRequest's payload cap is
// 64 MiB, so a captured admit fits with header room to spare.
const maxRecordBytes = 80 << 20

// castagnoli is the CRC-32C table (the polynomial with hardware support on
// both x86 and ARMv8 — the platforms this repo models).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segmentName renders the canonical file name of segment index.
func segmentName(index uint64) string {
	return fmt.Sprintf("seg-%08d.shj", index)
}

// parseSegmentName extracts the index from a canonical segment file name.
func parseSegmentName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".shj")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Segments lists the journal's segment files in index order.
func Segments(dir string) (paths []string, indices []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type seg struct {
		path  string
		index uint64
	}
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, seg{filepath.Join(dir, e.Name()), idx})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for _, s := range segs {
		paths = append(paths, s.path)
		indices = append(indices, s.index)
	}
	return paths, indices, nil
}

// frameBytes renders one frame around payload.
func frameBytes(payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, castagnoli))
	copy(b[8:], payload)
	return b
}

// scannedRecord is one fully-framed, CRC-valid, decodable record with its
// frame's start offset in the file.
type scannedRecord struct {
	off   int64
	bytes int64 // frame length including the 8-byte prelude
	// payload is the record payload; a fresh copy, safe to retain.
	payload []byte
	ev      Event
}

// scanResult is what scanSegment recovered from one segment file.
type scanResult struct {
	records []scannedRecord
	// validEnd is the offset just past the last good frame — where torn-tail
	// truncation cuts.
	validEnd int64
	// fileSize is the segment's size at scan time.
	fileSize int64
	// tail describes why scanning stopped before fileSize (nil: clean end).
	// A non-nil tail on a sealed segment is corruption; on the active
	// segment it is the torn tail reopen truncates.
	tail error
}

// torn reports whether the scan stopped before the end of the file.
func (s *scanResult) torn() bool { return s.validEnd != s.fileSize }

// scanSegment reads a segment file from the start, validating the magic and
// every frame (length bound, CRC, record decode), and stops at the first
// sign of damage. Structural damage — bad magic, a first record that is not
// a segment header — is returned as err (the file is not a recoverable
// journal segment); frame-level damage at the tail is reported via
// scanResult.tail with every preceding record intact.
func scanSegment(path string) (*scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	res := &scanResult{fileSize: int64(len(data))}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("journal: %s: bad segment magic", path)
	}
	off := int64(len(Magic))
	res.validEnd = off
	for off < int64(len(data)) {
		if off+8 > int64(len(data)) {
			res.tail = fmt.Errorf("journal: %s: torn frame prelude at offset %d", path, off)
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes {
			res.tail = fmt.Errorf("journal: %s: frame at offset %d declares %d bytes (limit %d)", path, off, n, maxRecordBytes)
			break
		}
		end := off + 8 + int64(n)
		if end > int64(len(data)) {
			res.tail = fmt.Errorf("journal: %s: torn frame at offset %d (%d of %d payload bytes present)", path, off, int64(len(data))-off-8, n)
			break
		}
		payload := data[off+8 : end]
		if crc32.Checksum(payload, castagnoli) != sum {
			res.tail = fmt.Errorf("journal: %s: CRC mismatch at offset %d", path, off)
			break
		}
		ev, err := decodeEvent(payload)
		if err != nil {
			res.tail = fmt.Errorf("journal: %s: offset %d: %w", path, off, err)
			break
		}
		if len(res.records) == 0 && ev.Kind != KindSegmentHeader {
			return nil, fmt.Errorf("journal: %s: first record is %s, want segment-header", path, ev.Kind)
		}
		if len(res.records) > 0 && ev.Kind == KindSegmentHeader {
			res.tail = fmt.Errorf("journal: %s: duplicate segment header at offset %d", path, off)
			break
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		res.records = append(res.records, scannedRecord{off: off, bytes: end - off, payload: cp, ev: ev})
		res.validEnd = end
		off = end
	}
	return res, nil
}

// writeMagic starts a fresh segment file.
func writeMagic(f *os.File) error {
	_, err := f.WriteString(Magic)
	return err
}

// syncDir fsyncs the journal directory so a freshly created or renamed
// segment file survives a crash (best effort — some filesystems refuse
// directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
