package journal

import "crypto/sha256"

// Merkle anchoring, after the audit-log pattern: each anchor commits to the
// batch of records since the previous anchor with one merkle root, and each
// root is chained to the previous anchor's chain hash — so the single
// 32-byte chain head commits to every record ever journaled, in order.
// Leaves and interior nodes are domain-separated so a leaf can never be
// confused with a node (the classic second-preimage defence).

// Hash domain tags.
const (
	tagLeaf  = 0x00
	tagNode  = 0x01
	tagEmpty = 0x02
)

// leafHash is the merkle leaf of one record payload.
func leafHash(payload []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{tagLeaf})
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// merkleRoot folds the leaves pairwise into one root. An odd node is
// promoted to the next level unchanged; zero leaves hash to a distinct
// empty-batch constant (a sealed anchor over an already-anchored segment).
func merkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return sha256.Sum256([]byte{tagEmpty})
	}
	level := make([][32]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				break
			}
			h := sha256.New()
			h.Write([]byte{tagNode})
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var n [32]byte
			h.Sum(n[:0])
			next = append(next, n)
		}
		level = next
	}
	return level[0]
}

// chainNext links one anchor's merkle root onto the running chain:
// chainᵢ = SHA-256(chainᵢ₋₁ ‖ rootᵢ). The genesis chain is all zeros.
func chainNext(prev, root [32]byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(root[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}
