// Package journal is LibShalom's tamper-evident request journal: an
// append-only, segment-rotated record of everything the serving front end
// admits and everything the self-healing runtime does while serving it —
// admitted requests (canonical wire header + payload SHA-256, optionally
// the payload itself), coalescer flushes, per-request results, and
// circuit-breaker transitions.
//
// Three properties drive the design:
//
//   - Tamper evidence. Records are grouped into batches, each batch is
//     anchored by a merkle root over its record payloads, and each root is
//     chained to the previous anchor (merkle.go). The 32-byte chain head
//     commits to every record ever written, so `shalom-journal verify`
//     detects any altered, dropped or reordered byte from one hash.
//   - Crash safety. Every record rides a CRC-32C frame (segment.go). A
//     torn tail — power cut mid-write — fails its CRC or its length and is
//     truncated on reopen; every fully-framed record before it survives,
//     and the chain resumes where it left off. The fsync policy knob
//     trades durability for latency (per-record, per-anchor, or none).
//   - Zero cost when disabled. The writer follows the telemetry contract:
//     a nil *Writer no-ops every method (enforced by shalom-vet's
//     nil-guard analyzer and, under the telemetryprobe tag, by a write
//     probe), so a server configured without a journal performs zero
//     journal work and zero allocations on the admission path.
//
// On top of the journal sit forensics and reproduction: cmd/shalom-journal
// verifies and dumps segments, and `shalom-load -replay` re-issues a
// captured traffic segment with original arrival spacing, asserting
// bitwise-identical results — a breaker trip or latency cliff becomes an
// offline, repeatable experiment.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/telemetry"
)

// FsyncPolicy selects when the writer fsyncs its segment file.
type FsyncPolicy uint8

const (
	// FsyncAnchor (the default) fsyncs at every anchor — a crash loses at
	// most the current unanchored batch's durability, never its integrity.
	FsyncAnchor FsyncPolicy = iota
	// FsyncAlways fsyncs after every record.
	FsyncAlways
	// FsyncNone never fsyncs explicitly; the OS decides.
	FsyncNone
)

// String names the policy for status exposition and flags.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAnchor:
		return "anchor"
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	}
	return fmt.Sprintf("fsync-%d", uint8(p))
}

// ParseFsyncPolicy parses the -journal-fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "anchor", "":
		return FsyncAnchor, nil
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	}
	return FsyncAnchor, fmt.Errorf("journal: unknown fsync policy %q (want anchor, always, or none)", s)
}

// Options configures Open. Zero fields select the documented defaults.
type Options struct {
	// Dir is the journal directory; segments are seg-NNNNNNNN.shj inside
	// it. Required.
	Dir string
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (checked at anchor boundaries). Default 8 MiB.
	SegmentBytes int64
	// Fsync is the durability policy. Default FsyncAnchor.
	Fsync FsyncPolicy
	// CapturePayloads stores each admitted request's operand payload in its
	// admit record — required for deterministic replay, off by default
	// (hash-only journaling for tamper evidence at minimal volume).
	CapturePayloads bool
	// Telemetry, when non-nil, receives journal counters (records, anchors,
	// seals, fsyncs, bytes) next to the serving metrics.
	Telemetry *telemetry.Recorder
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// Writer is the journal appender. A nil *Writer is the disabled journal:
// every method no-ops (and Admit returns 0), so callers hold one field and
// never branch. All methods are safe for concurrent use.
type Writer struct {
	mu   sync.Mutex
	opts Options
	tel  *telemetry.Recorder

	f        *os.File
	segIndex uint64
	segBytes int64 // bytes appended to the current segment (incl. magic)

	seq        uint64     // next record sequence number
	chain      [32]byte   // chain head (after the last anchor)
	leaves     [][32]byte // record leaf hashes since the last anchor
	unanchored int

	records     uint64 // records appended over the writer's lifetime
	anchors     uint64
	sealed      uint64 // segments sealed
	truncated   int64  // torn-tail bytes dropped at Open
	lastAnchor  time.Time
	dirtyBytes  int64 // bytes appended since the last fsync
	firstDirty  time.Time
	closed      bool
	err         error // sticky write error; the journal stops appending
}

// Open creates or reopens the journal in o.Dir. Reopening after a crash
// runs recovery on the newest segment: the torn tail (if any) is truncated,
// every fully-framed record survives, and the chain resumes from the last
// anchor with the surviving post-anchor records re-staged for the next one.
func Open(o Options) (*Writer, error) {
	o = o.withDefaults()
	if o.Dir == "" {
		return nil, fmt.Errorf("journal: Options.Dir is required")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{opts: o, tel: o.Telemetry}
	paths, indices, err := Segments(o.Dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		if err := w.openSegmentLocked(1); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := paths[len(paths)-1]
	res, err := scanSegment(last)
	if err != nil {
		return nil, err
	}
	n := len(res.records)
	if n > 0 && res.records[n-1].ev.Kind == KindAnchor && res.records[n-1].ev.Sealed && !res.torn() {
		// The newest segment is cleanly sealed: start the next one on its
		// chain head.
		w.seq = res.records[n-1].ev.Seq + 1
		w.chain = res.records[n-1].ev.Chain
		if err := w.openSegmentLocked(indices[len(indices)-1] + 1); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Recover the active (or crashed) segment: truncate the torn tail and
	// resume appending.
	if res.torn() {
		f, err := os.OpenFile(last, os.O_RDWR, 0)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(res.validEnd); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
		w.truncated = res.fileSize - res.validEnd
	}
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, err
	}
	w.f = f
	w.segIndex = indices[len(indices)-1]
	w.segBytes = res.validEnd
	for _, r := range res.records {
		if r.ev.Seq >= w.seq {
			w.seq = r.ev.Seq + 1
		}
		if r.ev.Kind == KindAnchor {
			w.chain = r.ev.Chain
			w.leaves = w.leaves[:0]
			w.unanchored = 0
			continue
		}
		// Segment header and event records are merkle leaves; surviving
		// post-anchor records re-stage for the next anchor.
		w.leaves = append(w.leaves, leafHash(r.payload))
		if r.ev.Kind != KindSegmentHeader {
			w.unanchored++
		}
	}
	if len(res.records) > 0 && res.records[0].ev.Kind == KindSegmentHeader {
		// The chain head at recovery is the last anchor's chain, or — when
		// the segment has no anchor yet — the header's inherited PrevChain.
		hasAnchor := false
		for _, r := range res.records {
			if r.ev.Kind == KindAnchor {
				hasAnchor = true
				break
			}
		}
		if !hasAnchor {
			w.chain = res.records[0].ev.PrevChain
		}
	}
	return w, nil
}

// Enabled reports whether the journal is live — the branch call sites use
// before paying for argument construction (encoding wire bytes, formatting
// class names).
//
//shalom:hotpath noalloc,nolock,noblock
func (w *Writer) Enabled() bool { return w != nil }

// Truncated reports how many torn-tail bytes Open dropped during recovery.
func (w *Writer) Truncated() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncated
}

// Admit journals one admitted request: t is the admission time (what replay
// paces on), header the canonical wire header JSON (no newline), payload
// the operand bytes. Returns the admit record's sequence number — the ID a
// later Result references — or 0 when the journal is disabled or failed.
func (w *Writer) Admit(t time.Time, header, payload []byte) uint64 {
	if w == nil {
		return 0
	}
	probeAtomicWrite()
	e := Event{Kind: KindAdmit, T: t.UnixNano(), Header: header, PayloadHash: sha256.Sum256(payload)}
	if w.opts.CapturePayloads {
		e.HasPayload = true
		e.Payload = payload
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(&e)
}

// Result journals the terminal answer of an admitted request: admitSeq is
// the value Admit returned, status the HTTP status, batchSize how many
// requests shared the flush (200 only), resultHash the SHA-256 of the
// response payload bytes (zero for non-200 answers).
func (w *Writer) Result(admitSeq uint64, status, batchSize int, resultHash [32]byte) {
	if w == nil {
		return
	}
	probeAtomicWrite()
	e := Event{
		Kind: KindResult, T: time.Now().UnixNano(),
		AdmitSeq: admitSeq, Status: int32(status), BatchSize: uint32(batchSize),
		ResultHash: resultHash,
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(&e)
}

// Flush journals one coalescer flush of size requests totalling flops work
// in class.
func (w *Writer) Flush(class string, size int, flops float64) {
	if w == nil {
		return
	}
	probeAtomicWrite()
	e := Event{Kind: KindFlush, T: time.Now().UnixNano(), Class: class, Size: uint32(size), Flops: flops}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(&e)
}

// Breaker journals one circuit-breaker transition.
func (w *Writer) Breaker(d guard.Degradation, from, to guard.State) {
	if w == nil {
		return
	}
	probeAtomicWrite()
	e := Event{
		Kind: KindBreaker, T: time.Now().UnixNano(),
		Platform: d.Platform, Kernel: d.Kernel,
		From: string(from), To: string(to),
		Reason: string(d.Reason), Detail: d.Detail, Shape: d.Shape,
		GuardSeq: d.Seq, Trips: uint32(d.Trips),
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(&e)
}

// TunePromote journals one autotuner promotion: class gained a serving
// tuned tile (kernel identity, mr×nr tile, kc panel depth) whose modeled
// throughput is gflops.
func (w *Writer) TunePromote(platform, class, kernel string, mr, nr, kc int, gflops float64) {
	if w == nil {
		return
	}
	probeAtomicWrite()
	e := Event{
		Kind: KindTunePromote, T: time.Now().UnixNano(),
		Platform: platform, Class: class, Kernel: kernel,
		MR: uint32(mr), NR: uint32(nr), KC: uint32(kc), GFLOPS: gflops,
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(&e)
}

// TuneRevert journals one autotuner revert: class fell back to the incumbent
// tile; detail carries the reason (breaker trip text or operator action).
func (w *Writer) TuneRevert(platform, class, kernel string, mr, nr, kc int, detail string) {
	if w == nil {
		return
	}
	probeAtomicWrite()
	e := Event{
		Kind: KindTuneRevert, T: time.Now().UnixNano(),
		Platform: platform, Class: class, Kernel: kernel, Detail: detail,
		MR: uint32(mr), NR: uint32(nr), KC: uint32(kc),
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(&e)
}

// GuardObserver adapts the writer to guard.SetTransitionObserver, so every
// trip and close lands in the journal. Returns nil for a nil writer —
// passing that to SetTransitionObserver clears the hook.
func (w *Writer) GuardObserver() func(guard.Degradation, guard.State, guard.State) {
	if w == nil {
		return nil
	}
	return func(d guard.Degradation, from, to guard.State) { w.Breaker(d, from, to) }
}

// Anchor closes the current batch: it writes an anchor record committing to
// every record since the previous anchor, advances the chain, fsyncs under
// the anchor policy, and rotates the segment when it has outgrown
// Options.SegmentBytes. A no-op when nothing is unanchored.
func (w *Writer) Anchor() {
	if w == nil {
		return
	}
	probeAtomicWrite()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.unanchored == 0 {
		return
	}
	w.anchorLocked(false)
}

// Close seals the journal: a final sealed anchor, an fsync, and the file
// handle released. Safe to call on a nil or already-closed writer.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	probeAtomicWrite()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.anchorLocked(true)
	w.closed = true
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
	}
	return w.err
}

// Status is the journal's durability view, exposed on /healthz.
type Status struct {
	Dir string `json:"dir"`
	// Segment is the active segment index; SealedSegments how many have
	// been sealed over the writer's lifetime.
	Segment        uint64 `json:"segment"`
	SealedSegments uint64 `json:"sealed_segments"`
	// Records and Anchors count appends over the writer's lifetime;
	// Unanchored is the current batch not yet committed to the chain.
	Records    uint64 `json:"records"`
	Anchors    uint64 `json:"anchors"`
	Unanchored int    `json:"unanchored"`
	// ChainHead is the hex chain hash after the last anchor — the single
	// value that commits to the journal's whole history.
	ChainHead string `json:"chain_head"`
	// LastAnchorUnixNano is when the chain head last advanced (0: never).
	LastAnchorUnixNano int64 `json:"last_anchor_unix_nano,omitempty"`
	// Fsync is the active policy; DirtyBytes how many appended bytes are
	// not yet fsynced; FsyncLagMS how long the oldest of them has been
	// waiting (0 when clean).
	Fsync      string  `json:"fsync"`
	DirtyBytes int64   `json:"dirty_bytes"`
	FsyncLagMS float64 `json:"fsync_lag_ms"`
	// Err reports a sticky write failure; the journal has stopped
	// appending.
	Err string `json:"err,omitempty"`
}

// Status reports the journal's durability state; the zero Status for a nil
// writer.
func (w *Writer) Status() Status {
	if w == nil {
		return Status{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Status{
		Dir:            w.opts.Dir,
		Segment:        w.segIndex,
		SealedSegments: w.sealed,
		Records:        w.records,
		Anchors:        w.anchors,
		Unanchored:     w.unanchored,
		ChainHead:      hex.EncodeToString(w.chain[:]),
		Fsync:          w.opts.Fsync.String(),
		DirtyBytes:     w.dirtyBytes,
	}
	if !w.lastAnchor.IsZero() {
		s.LastAnchorUnixNano = w.lastAnchor.UnixNano()
	}
	if w.dirtyBytes > 0 && !w.firstDirty.IsZero() {
		s.FsyncLagMS = float64(time.Since(w.firstDirty).Microseconds()) / 1e3
	}
	if w.err != nil {
		s.Err = w.err.Error()
	}
	return s
}

// ChainHead returns the current chain head hash.
func (w *Writer) ChainHead() [32]byte {
	if w == nil {
		return [32]byte{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.chain
}

// appendLocked encodes and frames e (assigning its sequence number),
// appends it to the segment, stages its merkle leaf, and applies the
// per-record fsync policy. Returns the assigned sequence number, or 0 after
// a sticky failure. Caller holds w.mu.
func (w *Writer) appendLocked(e *Event) uint64 {
	if w == nil {
		return 0
	}
	if w.err != nil || w.closed || w.f == nil {
		return 0
	}
	e.Seq = w.seq
	payload := encodeEvent(e)
	frame := frameBytes(payload)
	if faults.Fire(faults.JournalTornWrite) {
		w.tel.FaultInjected(faults.JournalTornWrite)
		// The injected crash: half the frame reaches the disk, then the
		// process "dies". The writer goes sticky-failed; reopen truncates.
		if len(frame) > 1 {
			_, _ = w.f.Write(frame[:len(frame)/2])
		}
		_ = w.f.Sync()
		w.err = fmt.Errorf("journal: %w", errInjectedTear)
		return 0
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = err
		return 0
	}
	w.seq++
	w.segBytes += int64(len(frame))
	w.leaves = append(w.leaves, leafHash(payload))
	if e.Kind != KindSegmentHeader {
		w.unanchored++
		w.records++
	}
	w.markDirtyLocked(int64(len(frame)))
	w.tel.JournalRecord(len(frame))
	if w.opts.Fsync == FsyncAlways {
		w.fsyncLocked()
	}
	return e.Seq
}

// errInjectedTear marks the fault-injected mid-record crash.
var errInjectedTear = fmt.Errorf("injected torn write (faults.JournalTornWrite)")

// anchorLocked writes the anchor record for the staged batch (sealing the
// segment when seal is set), advances the chain, fsyncs per policy, and
// rotates an overgrown segment. Caller holds w.mu.
func (w *Writer) anchorLocked(seal bool) {
	if w == nil {
		return
	}
	if w.err != nil || w.closed || w.f == nil {
		return
	}
	rotate := !seal && w.segBytes >= w.opts.SegmentBytes
	root := merkleRoot(w.leaves)
	chain := chainNext(w.chain, root)
	e := Event{
		Kind: KindAnchor, Seq: w.seq, T: time.Now().UnixNano(),
		Count: uint32(w.unanchored), Root: root, Chain: chain,
		Sealed: seal || rotate,
	}
	payload := encodeEvent(&e)
	frame := frameBytes(payload)
	if _, err := w.f.Write(frame); err != nil {
		w.err = err
		return
	}
	w.seq++
	w.segBytes += int64(len(frame))
	w.chain = chain
	w.leaves = w.leaves[:0]
	w.unanchored = 0
	w.anchors++
	w.lastAnchor = time.Now()
	w.markDirtyLocked(int64(len(frame)))
	w.tel.JournalAnchor(len(frame))
	if w.opts.Fsync != FsyncNone {
		w.fsyncLocked()
	}
	if e.Sealed {
		w.sealed++
		w.tel.JournalSegmentSealed()
	}
	if rotate {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
		if err := w.openSegmentLocked(w.segIndex + 1); err != nil && w.err == nil {
			w.err = err
		}
	}
}

// openSegmentLocked creates segment index and writes its header record
// (inheriting the current chain head). Caller holds w.mu (or owns w
// exclusively during Open).
func (w *Writer) openSegmentLocked(index uint64) error {
	if w == nil {
		return fmt.Errorf("journal: nil writer")
	}
	path := filepath.Join(w.opts.Dir, segmentName(index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := writeMagic(f); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segIndex = index
	w.segBytes = int64(len(Magic))
	w.leaves = w.leaves[:0]
	w.unanchored = 0
	h := Event{
		Kind: KindSegmentHeader, Seq: w.seq, T: time.Now().UnixNano(),
		Version: Version, Segment: index, PrevChain: w.chain,
	}
	payload := encodeEvent(&h)
	frame := frameBytes(payload)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.seq++
	w.segBytes += int64(len(frame))
	w.leaves = append(w.leaves, leafHash(payload))
	w.markDirtyLocked(int64(len(frame)))
	if w.opts.Fsync != FsyncNone {
		w.fsyncLocked()
	}
	syncDir(w.opts.Dir)
	return nil
}

// markDirtyLocked accounts n appended-but-unsynced bytes.
func (w *Writer) markDirtyLocked(n int64) {
	if w == nil {
		return
	}
	if w.dirtyBytes == 0 {
		w.firstDirty = time.Now()
	}
	w.dirtyBytes += n
}

// fsyncLocked flushes the segment file under the active policy.
func (w *Writer) fsyncLocked() {
	if w == nil {
		return
	}
	if w.f == nil || w.dirtyBytes == 0 {
		return
	}
	if err := w.f.Sync(); err != nil {
		if w.err == nil {
			w.err = err
		}
		return
	}
	w.dirtyBytes = 0
	w.firstDirty = time.Time{}
	w.tel.JournalFsync()
}

// HashF32s returns the SHA-256 of v's little-endian wire bytes — the
// response-payload hash Result records for f32 requests.
func HashF32s(v []float32) [32]byte {
	h := sha256.New()
	var buf [512]byte
	i := 0
	for i < len(v) {
		n := 0
		for i < len(v) && n+4 <= len(buf) {
			binary.LittleEndian.PutUint32(buf[n:], math.Float32bits(v[i]))
			n += 4
			i++
		}
		h.Write(buf[:n])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashF64s is HashF32s for f64 payloads.
func HashF64s(v []float64) [32]byte {
	h := sha256.New()
	var buf [512]byte
	i := 0
	for i < len(v) {
		n := 0
		for i < len(v) && n+8 <= len(buf) {
			binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(v[i]))
			n += 8
			i++
		}
		h.Write(buf[:n])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}
