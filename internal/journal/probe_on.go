//go:build telemetryprobe

package journal

import "sync/atomic"

// The telemetryprobe build for the journal: every exported write method on
// *Writer calls probeAtomicWrite before touching state, so
// `go test -tags telemetryprobe` can assert the journal-disabled admission
// path performs zero journal writes — the zero-cost-when-disabled contract
// enforced as an exact count, like telemetry's.

var probeWrites atomic.Uint64

func probeAtomicWrite() { probeWrites.Add(1) }

// ProbeAtomicWrites returns the number of journal write-method entries since
// the last ProbeReset. Only exists under the telemetryprobe tag.
func ProbeAtomicWrites() uint64 { return probeWrites.Load() }

// ProbeReset zeroes the probe counter.
func ProbeReset() { probeWrites.Store(0) }
