package journal

import "fmt"

// Verification layer: re-derive every merkle root and chain hash from the
// raw record bytes and compare against what the anchors claim. Any altered,
// inserted, dropped, or reordered byte in a sealed segment breaks either a
// CRC frame (caught by the scanner) or the recomputed chain (caught here) —
// there is no third option, because every non-anchor record is a leaf of
// exactly one anchored batch.

// SegmentReport is the verification result for one segment file.
type SegmentReport struct {
	Path    string `json:"path"`
	Index   uint64 `json:"index"`
	Bytes   int64  `json:"bytes"`
	Records int    `json:"records"` // event records (header and anchors excluded)
	Anchors int    `json:"anchors"`
	Sealed  bool   `json:"sealed"`
	// FirstSeq/LastSeq span every record in the segment, header and anchors
	// included. FirstT/LastT are Unix-nanosecond event times.
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	FirstT   int64  `json:"first_t,omitempty"`
	LastT    int64  `json:"last_t,omitempty"`
	// ChainHead is the hex chain hash after the segment's last anchor.
	ChainHead string `json:"chain_head"`
	// Torn marks a tail that stopped the scan early; TailErr says why. A
	// torn tail always fails verification: it is either crash damage (a
	// writer reopen repairs it by truncation — re-verify after) or
	// tampering, and verify cannot tell which.
	Torn    bool   `json:"torn,omitempty"`
	TailErr string `json:"tail_err,omitempty"`
	// Unanchored counts event records after the last anchor — journaled and
	// CRC-protected but not yet committed to the chain.
	Unanchored int `json:"unanchored,omitempty"`
}

// Report is the verification result for a whole journal directory.
type Report struct {
	Dir      string          `json:"dir"`
	Segments []SegmentReport `json:"segments"`
	// ChainHead is the final chain hash — the one value that commits to
	// every anchored record in the journal.
	ChainHead string `json:"chain_head"`
	Records   int    `json:"records"`
	Anchors   int    `json:"anchors"`
	// OK is true when every check passed; Errs lists each failure.
	OK   bool     `json:"ok"`
	Errs []string `json:"errs,omitempty"`
}

func (r *Report) errf(format string, args ...any) {
	r.Errs = append(r.Errs, fmt.Sprintf(format, args...))
}

// VerifyDir verifies the whole journal in dir: magic and CRC of every
// frame, decode of every record, segment-header chaining, recomputed merkle
// roots and chain hashes against every anchor, anchor counts, sealed-anchor
// placement, and cross-segment sequence continuity. The newest segment may
// legitimately be unsealed (a live writer between anchors) — but its frames
// must all be whole: a torn tail fails verification until a writer reopen
// truncates it (crash repair) or proves it was tampering.
func VerifyDir(dir string) (*Report, error) {
	paths, indices, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	rep := &Report{Dir: dir, OK: true}
	if len(paths) == 0 {
		rep.errf("no journal segments in %s", dir)
		rep.OK = false
		return rep, nil
	}
	var chain [32]byte // genesis: all zeros
	nextSeq := uint64(0)
	haveSeq := false
	for si, path := range paths {
		last := si == len(paths)-1
		sr := SegmentReport{Path: path, Index: indices[si]}
		res, err := scanSegment(path)
		if err != nil {
			rep.errf("%v", err)
			rep.OK = false
			rep.Segments = append(rep.Segments, sr)
			continue
		}
		sr.Bytes = res.fileSize
		if res.torn() {
			sr.Torn = true
			sr.TailErr = res.tail.Error()
			rep.errf("segment %d: torn tail (crash damage or tampering): %v", indices[si], res.tail)
			rep.OK = false
		}
		if len(res.records) == 0 {
			rep.errf("segment %d: no records survive the scan", indices[si])
			rep.OK = false
			rep.Segments = append(rep.Segments, sr)
			continue
		}
		hdr := res.records[0].ev
		if hdr.Version != Version {
			rep.errf("segment %d: format version %d, want %d", indices[si], hdr.Version, Version)
			rep.OK = false
		}
		if hdr.Segment != indices[si] {
			rep.errf("segment %d: header claims index %d", indices[si], hdr.Segment)
			rep.OK = false
		}
		if hdr.PrevChain != chain {
			rep.errf("segment %d: header PrevChain %x does not extend chain head %x", indices[si], hdr.PrevChain, chain)
			rep.OK = false
		}
		sr.FirstSeq = hdr.Seq
		leaves := [][32]byte{leafHash(res.records[0].payload)}
		count := 0
		sealed := false
		for ri, r := range res.records {
			if haveSeq && r.ev.Seq != nextSeq {
				rep.errf("segment %d: record %d has seq %d, want %d", indices[si], ri, r.ev.Seq, nextSeq)
				rep.OK = false
			}
			nextSeq = r.ev.Seq + 1
			haveSeq = true
			sr.LastSeq = r.ev.Seq
			if r.ev.T != 0 {
				if sr.FirstT == 0 {
					sr.FirstT = r.ev.T
				}
				sr.LastT = r.ev.T
			}
			if ri == 0 {
				continue // header leaf already staged
			}
			if sealed {
				rep.errf("segment %d: record %d (%s) after the sealed anchor", indices[si], ri, r.ev.Kind)
				rep.OK = false
			}
			if r.ev.Kind != KindAnchor {
				leaves = append(leaves, leafHash(r.payload))
				count++
				sr.Records++
				continue
			}
			// Re-derive what this anchor must commit to.
			if int(r.ev.Count) != count {
				rep.errf("segment %d: anchor seq %d claims %d records, batch has %d", indices[si], r.ev.Seq, r.ev.Count, count)
				rep.OK = false
			}
			root := merkleRoot(leaves)
			if r.ev.Root != root {
				rep.errf("segment %d: anchor seq %d root %x, recomputed %x", indices[si], r.ev.Seq, r.ev.Root, root)
				rep.OK = false
			}
			want := chainNext(chain, root)
			if r.ev.Chain != want {
				rep.errf("segment %d: anchor seq %d chain %x, recomputed %x", indices[si], r.ev.Seq, r.ev.Chain, want)
				rep.OK = false
			}
			chain = r.ev.Chain
			leaves = leaves[:0]
			count = 0
			sr.Anchors++
			rep.Anchors++
			if r.ev.Sealed {
				sealed = true
			}
		}
		sr.Sealed = sealed
		sr.Unanchored = count
		sr.ChainHead = fmt.Sprintf("%x", chain)
		rep.Records += sr.Records
		if !last && !sealed {
			rep.errf("segment %d: not sealed but a later segment exists", indices[si])
			rep.OK = false
		}
		rep.Segments = append(rep.Segments, sr)
	}
	rep.ChainHead = fmt.Sprintf("%x", chain)
	return rep, nil
}

// ReadDir decodes every surviving record in the journal, in order — the
// input for dumps and replay. Events own their bytes (the scanner copies).
// Damage anywhere but the newest segment's tail is an error.
func ReadDir(dir string) ([]Event, error) {
	paths, indices, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("journal: no segments in %s", dir)
	}
	var events []Event
	for si, path := range paths {
		res, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		if res.torn() && si != len(paths)-1 {
			return nil, fmt.Errorf("journal: segment %d damaged mid-journal: %w", indices[si], res.tail)
		}
		for _, r := range res.records {
			events = append(events, r.ev)
		}
	}
	return events, nil
}
