package heal

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"libshalom/internal/guard"
)

// Report is a point-in-time health view of the self-healing runtime: the
// active policy, every breaker record (including healed pairs, whose trip
// count still drives backoff), and the full trip history.
type Report struct {
	Config   Config              `json:"config"`
	Breakers []guard.Degradation `json:"breakers,omitempty"`
	History  []guard.Degradation `json:"history,omitempty"`
}

// Snapshot assembles the health report.
func Snapshot() Report {
	return Report{
		Config:   Current(),
		Breakers: guard.Breakers(),
		History:  guard.History(),
	}
}

// Healthy reports whether no breaker is currently open or probing.
func (r Report) Healthy() bool {
	for _, b := range r.Breakers {
		if b.State != guard.StateHealthy {
			return false
		}
	}
	return true
}

// Write renders the report as the human-readable health summary shalom-info
// -health prints.
func (r Report) Write(w io.Writer) {
	fmt.Fprintf(w, "healing policy: cooldown %v (doubles per trip), close after %d agreeing canaries, 1-in-%d canary sampling\n",
		r.Config.Cooldown, r.Config.CanaryTarget, r.Config.CanaryStride)
	if len(r.Breakers) == 0 {
		fmt.Fprintln(w, "breakers: none tripped — every kernel path healthy on the fast path")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "platform\tkernel path\tstate\ttrips\tlast opened\treason\tshape\tdetail")
	for _, b := range r.Breakers {
		shape := b.Shape
		if shape == "" {
			shape = "-"
		}
		opened := "-"
		if !b.ReopenedAt.IsZero() {
			opened = b.ReopenedAt.Format(time.RFC3339)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			b.Platform, b.Kernel, b.State, b.Trips, opened, b.Reason, shape, b.Detail)
	}
	tw.Flush()
	if len(r.History) > 0 {
		fmt.Fprintln(w, "trip history (first domino first):")
		for _, d := range r.History {
			fmt.Fprintf(w, "  %s\n", d.String())
		}
	}
}
