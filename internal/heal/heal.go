// Package heal is the self-healing policy layer over the guard registry:
// where guard stores the per-(platform, kernel-path) circuit-breaker state,
// heal decides how the state machine moves — how long an open breaker cools
// down, what fraction of probing calls run the canary shadow, and how many
// consecutive agreeing canaries prove recovery. The driver (internal/core)
// asks RouteFor where to send each call, reports canary outcomes through
// ReportAgree/ReportMismatch, and trips breakers through Trip; everything
// else — cloning the output, running the reference shadow, comparing — is
// the driver's job, because only it holds the kernels.
//
// The design follows the generated-kernel stacks in the related work (Exo,
// the TVM generator family): a fast generated path backed by a verified
// reference, where recovery is proved on live shapes by shadow execution,
// never assumed from the passage of time alone.
package heal

import (
	"sync"
	"time"

	"libshalom/internal/guard"
)

// Config is the self-healing policy. The zero value of any field selects
// its default.
type Config struct {
	// Cooldown is the base open→probing cooldown. Each re-trip of the same
	// (platform, kernel) pair doubles the effective cooldown, up to 64×.
	// Default 5s.
	Cooldown time.Duration
	// CanaryTarget is how many consecutive agreeing canaries close a
	// probing breaker. Default 8.
	CanaryTarget int
	// CanaryStride bounds the canary fraction while probing: one of every
	// CanaryStride calls runs the fast path shadowed by the reference path;
	// the rest run the reference path alone. Default 2 (half the probing
	// traffic pays the shadow cost).
	CanaryStride int
}

// Defaults for zero Config fields.
const (
	DefaultCanaryTarget = 8
	DefaultCanaryStride = 2
)

var (
	cfgMu sync.Mutex
	cfg   = Config{}
)

// normalized returns c with zero fields replaced by defaults.
func (c Config) normalized() Config {
	if c.Cooldown <= 0 {
		c.Cooldown = guard.DefaultCooldown
	}
	if c.CanaryTarget <= 0 {
		c.CanaryTarget = DefaultCanaryTarget
	}
	if c.CanaryStride <= 0 {
		c.CanaryStride = DefaultCanaryStride
	}
	return c
}

// Configure installs a new healing policy and returns the previous one.
// Zero fields of c select their documented defaults. The policy is
// process-global, like the guard registry it governs.
func Configure(c Config) Config {
	cfgMu.Lock()
	defer cfgMu.Unlock()
	prev := cfg.normalized()
	cfg = c.normalized()
	return prev
}

// Current returns the active healing policy with defaults resolved.
func Current() Config {
	cfgMu.Lock()
	defer cfgMu.Unlock()
	return cfg.normalized()
}

// Route is where RouteFor sends one call.
type Route uint8

const (
	// RouteFast: breaker closed — the generated fast path.
	RouteFast Route = iota
	// RouteRef: breaker open or probing off-sample — the reference path.
	RouteRef
	// RouteCanary: breaker probing — fast path shadowed by the reference
	// path on a cloned output, compared element-wise.
	RouteCanary
)

// RouteFor is the per-call dispatch decision for a kernel path on a
// platform. beganProbe reports (exactly once per open→probing transition)
// that this call moved the breaker into the probing state, so the caller
// can emit the corresponding telemetry event.
func RouteFor(platform, kernel string) (r Route, beganProbe bool) {
	d, began := guard.Dispatch(platform, kernel, Current().CanaryStride)
	switch d {
	case guard.DispatchRef:
		return RouteRef, began
	case guard.DispatchCanary:
		return RouteCanary, began
	default:
		return RouteFast, began
	}
}

// Trip opens (or re-opens) the breaker with the configured base cooldown,
// reporting whether a new trip was recorded (false: it was already open).
func Trip(platform, kernel string, reason guard.Reason, detail, shape string) bool {
	return guard.Trip(platform, kernel, reason, detail, shape, Current().Cooldown)
}

// ReportAgree records one agreeing canary; closed reports that the breaker
// healed (the fast path is re-promoted).
func ReportAgree(platform, kernel string) (closed bool) {
	return guard.CanaryAgree(platform, kernel, Current().CanaryTarget)
}

// ReportMismatch records a canary disagreement: the breaker re-opens as a
// new trip (doubling its cooldown). Returns whether a trip was recorded.
func ReportMismatch(platform, kernel, detail, shape string) bool {
	return Trip(platform, kernel, guard.ReasonCanary, detail, shape)
}

// BeginProbation arms the breaker for a (platform, kernel) pair directly in
// the probing state without recording a trip — the canary gate the
// autotuner puts freshly installed candidates behind. The candidate then
// earns its promotion through the same ReportAgree/ReportMismatch protocol
// as a healing breaker.
func BeginProbation(platform, kernel string) bool {
	return guard.BeginProbation(platform, kernel)
}

// Tolerance is the canary comparison tolerance for an element size: the
// same order as the numeric accuracy the test suite holds the fast path to
// against the reference implementation.
func Tolerance(elemBytes int) float64 {
	if elemBytes == 8 {
		return 1e-10
	}
	return 1e-4
}

// Agrees compares an m×n fast-path result (leading dimension ldGot) against
// the reference shadow (leading dimension ldWant) element-wise under a
// relative tolerance: |got-want| ≤ tol·(1+|want|). NaN or Inf on one side
// only is a disagreement; matching non-finite values (legitimate IEEE
// propagation from non-finite inputs) agree.
func Agrees[T ~float32 | ~float64](got []T, ldGot int, want []T, ldWant, m, n int, tol float64) bool {
	for i := 0; i < m; i++ {
		gr := got[i*ldGot : i*ldGot+n]
		wr := want[i*ldWant : i*ldWant+n]
		for j := 0; j < n; j++ {
			g, w := float64(gr[j]), float64(wr[j])
			if g == w { // covers matching ±Inf and exact agreement
				continue
			}
			if g != g && w != w { // both NaN: legitimate propagation
				continue
			}
			// Any other non-finite pairing — NaN on one side, Inf against a
			// finite value, or ±Inf with flipped signs — is a disagreement;
			// the relative test below would let Inf-vs-Inf slip through
			// (Inf <= Inf holds).
			if !isFinite(g) || !isFinite(w) {
				return false
			}
			diff := g - w
			if diff < 0 {
				diff = -diff
			}
			lim := w
			if lim < 0 {
				lim = -lim
			}
			if diff > tol*(1+lim) {
				return false
			}
		}
	}
	return true
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool { return f-f == 0 }
