package heal

import (
	"math"
	"strings"
	"testing"
	"time"

	"libshalom/internal/guard"
)

func withConfig(t *testing.T, c Config) {
	t.Helper()
	prev := Configure(c)
	t.Cleanup(func() { Configure(prev) })
}

func TestConfigDefaults(t *testing.T) {
	withConfig(t, Config{})
	c := Current()
	if c.Cooldown != guard.DefaultCooldown || c.CanaryTarget != DefaultCanaryTarget || c.CanaryStride != DefaultCanaryStride {
		t.Fatalf("defaults = %+v", c)
	}
	withConfig(t, Config{Cooldown: time.Minute, CanaryTarget: 3, CanaryStride: 4})
	c = Current()
	if c.Cooldown != time.Minute || c.CanaryTarget != 3 || c.CanaryStride != 4 {
		t.Fatalf("configured = %+v", c)
	}
}

// The policy drives the full loop: Trip opens with the configured cooldown,
// RouteFor moves to canary after it expires, target agreements close.
func TestPolicyDrivesGuardLoop(t *testing.T) {
	guard.Reset()
	defer guard.Reset()
	withConfig(t, Config{Cooldown: time.Millisecond, CanaryTarget: 2, CanaryStride: 1})
	const plat, kern = "heal-plat", guard.PathF32
	if r, _ := RouteFor(plat, kern); r != RouteFast {
		t.Fatalf("healthy route = %v", r)
	}
	if !Trip(plat, kern, guard.ReasonPanic, "boom", "NN 8x8x8") {
		t.Fatal("Trip not recorded")
	}
	if r, _ := RouteFor(plat, kern); r != RouteRef {
		t.Fatalf("open route = %v, want ref", r)
	}
	time.Sleep(3 * time.Millisecond)
	r, began := RouteFor(plat, kern)
	if r != RouteCanary || !began {
		t.Fatalf("post-cooldown route = %v, began=%v", r, began)
	}
	if ReportAgree(plat, kern) {
		t.Fatal("closed before the agreement target")
	}
	if !ReportAgree(plat, kern) {
		t.Fatal("did not close at the agreement target")
	}
	if guard.StateOf(plat, kern) != guard.StateHealthy {
		t.Fatalf("state = %v after close", guard.StateOf(plat, kern))
	}
}

// A mismatch re-opens as a fresh trip with the doubled cooldown.
func TestReportMismatchReopens(t *testing.T) {
	guard.Reset()
	defer guard.Reset()
	withConfig(t, Config{Cooldown: time.Millisecond, CanaryTarget: 8, CanaryStride: 1})
	const plat, kern = "heal-plat", guard.PathF64
	Trip(plat, kern, guard.ReasonPanic, "boom", "")
	time.Sleep(3 * time.Millisecond)
	if r, _ := RouteFor(plat, kern); r != RouteCanary {
		t.Fatalf("route = %v, want canary", r)
	}
	if !ReportMismatch(plat, kern, "disagreed", "NN 4x4x4") {
		t.Fatal("mismatch did not re-open")
	}
	d, ok := guard.Demotion(plat, kern)
	if !ok || d.Reason != guard.ReasonCanary || d.Trips != 2 || d.State != guard.StateOpen {
		t.Fatalf("re-opened record = %+v, %v", d, ok)
	}
}

func TestTolerance(t *testing.T) {
	if Tolerance(4) != 1e-4 || Tolerance(8) != 1e-10 {
		t.Fatalf("tolerances = %g / %g", Tolerance(4), Tolerance(8))
	}
}

func TestAgrees(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name      string
		got, want []float64
		ok        bool
	}{
		{"exact", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}, true},
		{"within-tol", []float64{1 + 1e-12, 2, 3, 4}, []float64{1, 2, 3, 4}, true},
		{"outside-tol", []float64{1.1, 2, 3, 4}, []float64{1, 2, 3, 4}, false},
		{"both-nan", []float64{nan, 2, 3, 4}, []float64{nan, 2, 3, 4}, true},
		{"nan-got-only", []float64{nan, 2, 3, 4}, []float64{1, 2, 3, 4}, false},
		{"nan-want-only", []float64{1, 2, 3, 4}, []float64{nan, 2, 3, 4}, false},
		{"both-inf", []float64{math.Inf(1), 2, 3, 4}, []float64{math.Inf(1), 2, 3, 4}, true},
		{"inf-sign-flip", []float64{math.Inf(1), 2, 3, 4}, []float64{math.Inf(-1), 2, 3, 4}, false},
	}
	for _, tc := range cases {
		if got := Agrees(tc.got, 2, tc.want, 2, 2, 2, 1e-10); got != tc.ok {
			t.Errorf("%s: Agrees = %v, want %v", tc.name, got, tc.ok)
		}
	}
	// Strided views: only the first n of each row are compared.
	got := []float64{1, 99, 2, 98}
	want := []float64{1, 2}
	if !Agrees(got, 2, want, 1, 2, 1, 1e-10) {
		t.Fatal("strided comparison read past the row extent")
	}
}

func TestReportRendersBreakersAndHistory(t *testing.T) {
	guard.Reset()
	defer guard.Reset()
	withConfig(t, Config{Cooldown: time.Second, CanaryTarget: 8, CanaryStride: 2})
	var sb strings.Builder
	Snapshot().Write(&sb)
	if !strings.Contains(sb.String(), "none tripped") {
		t.Fatalf("healthy report = %q", sb.String())
	}
	if !Snapshot().Healthy() {
		t.Fatal("fresh registry not Healthy")
	}
	Trip("rep-plat", guard.PathF32, guard.ReasonPanic, "boom", "NN 8x8x8")
	rep := Snapshot()
	if rep.Healthy() {
		t.Fatal("tripped registry reports Healthy")
	}
	sb.Reset()
	rep.Write(&sb)
	out := sb.String()
	for _, want := range []string{"rep-plat", guard.PathF32, "open", "runtime-panic", "NN 8x8x8", "trip history"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
