package heal_test

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"libshalom"
	"libshalom/internal/faults"
	"libshalom/internal/mat"
)

// TestSoakRandomFaultSchedule hammers the public API under a randomized
// fault schedule and holds it to the self-healing contract:
//
//   - a nil error means a numerically correct result, no matter which
//     faults were armed when the call ran;
//   - a non-nil error is always typed (*StuckWorkerError here — the only
//     prompt-termination path on the non-batch API);
//   - once the schedule stops, every breaker converges back to healthy.
//
// The test is expensive (seconds of wall clock, deliberate 400ms stalls)
// and is gated behind SHALOM_SOAK=1; run it via `make test-soak`.
// SHALOM_SOAK_SEED pins the schedule for reproduction.
func TestSoakRandomFaultSchedule(t *testing.T) {
	if os.Getenv("SHALOM_SOAK") == "" {
		t.Skip("soak disabled; run via `make test-soak` (SHALOM_SOAK=1)")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("SHALOM_SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SHALOM_SOAK_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("soak seed %d (set SHALOM_SOAK_SEED to reproduce)", seed)
	rng := rand.New(rand.NewSource(seed))

	faults.Reset()
	libshalom.ResetDegradations()
	defer faults.Reset()
	defer libshalom.ResetDegradations()
	prev := libshalom.ConfigureHealing(libshalom.HealingConfig{
		Cooldown: 15 * time.Millisecond, CanaryTarget: 8, CanaryStride: 1,
	})
	defer libshalom.ConfigureHealing(prev)

	const deadline = 150 * time.Millisecond
	ctx := libshalom.New(
		libshalom.WithThreads(2),
		libshalom.WithNumericGuard(),
		libshalom.WithDeadline(deadline),
		libshalom.WithTelemetry(),
	)

	// Cheap corruption faults arm often; the stuck-worker stall (400ms of
	// real wall clock each) arms rarely.
	cheap := []faults.Point{
		faults.PanicInKernel, faults.CorruptPack, faults.SpuriousNaN,
		faults.SlowWorker, faults.CanaryMismatch,
	}
	dur := 3 * time.Second
	if s := os.Getenv("SHALOM_SOAK_SECONDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad SHALOM_SOAK_SECONDS %q: %v", s, err)
		}
		dur = time.Duration(v) * time.Second
	}
	end := time.Now().Add(dur)
	mrng := mat.NewRNG(uint64(seed))
	var calls, stuck, failedOK int
	for time.Now().Before(end) {
		if rng.Intn(4) == 0 {
			faults.Arm(cheap[rng.Intn(len(cheap))], rng.Intn(3)+1)
		}
		if rng.Intn(50) == 0 {
			faults.Arm(faults.StuckWorker, 1)
		}
		m, n, k := 4+rng.Intn(93), 4+rng.Intn(93), 2+rng.Intn(47)
		var beta float64
		if rng.Intn(2) == 0 {
			beta = 0.5
		}
		var err error
		if rng.Intn(2) == 0 {
			err = soakCallF32(t, ctx, mrng, m, n, k, float32(beta))
		} else {
			err = soakCallF64(t, ctx, mrng, m, n, k, beta)
		}
		if err != nil {
			var swe *libshalom.StuckWorkerError
			if !errors.As(err, &swe) {
				t.Fatalf("call %d: untyped error %v (%T)", calls, err, err)
			}
			stuck++ // output buffers were fresh per call; simply abandoned
		} else {
			failedOK++
		}
		calls++
	}
	t.Logf("soak: %d calls, %d correct, %d typed stuck errors", calls, failedOK, stuck)
	if calls == 0 {
		t.Fatal("soak made no calls")
	}

	// Schedule over: the runtime must converge back to healthy. Stragglers
	// from stuck errors drain first; then drive probing until every breaker
	// closes. Backoff after repeated trips caps at base<<6 ≈ 1s, so 15s is
	// generous.
	faults.Reset()
	time.Sleep(faults.StuckSleep)
	converge := time.Now().Add(15 * time.Second)
	for !libshalom.Health().Healthy() {
		if time.Now().After(converge) {
			t.Fatalf("breakers never converged to healthy: %+v", libshalom.Health().Breakers)
		}
		time.Sleep(20 * time.Millisecond)
		if err := soakCallF32(t, ctx, mrng, 24, 24, 12, 0); err != nil {
			t.Fatalf("convergence f32 call failed: %v", err)
		}
		if err := soakCallF64(t, ctx, mrng, 24, 24, 12, 0); err != nil {
			t.Fatalf("convergence f64 call failed: %v", err)
		}
	}
	t.Logf("converged healthy: %+v", libshalom.Health().Breakers)
}

// soakCallF32 runs one SGEMM on fresh buffers. nil error ⇒ the result is
// verified against the scalar oracle before returning.
func soakCallF32(t *testing.T, ctx *libshalom.Context, rng *mat.RNG, m, n, k int, beta float32) error {
	t.Helper()
	a := mat.RandomF32(m, k, rng)
	b := mat.RandomF32(k, n, rng)
	c := mat.RandomF32(m, n, rng)
	want := c.Clone()
	mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, a, b, beta, want)
	err := ctx.SGEMM(libshalom.NN, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
	if err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g, w := float64(c.At(i, j)), float64(want.At(i, j))
			if math.Abs(g-w) > 1e-3*(1+math.Abs(w)) {
				t.Fatalf("f32 %dx%dx%d beta=%v: C(%d,%d) = %v, want %v", m, n, k, beta, i, j, g, w)
			}
		}
	}
	return nil
}

func soakCallF64(t *testing.T, ctx *libshalom.Context, rng *mat.RNG, m, n, k int, beta float64) error {
	t.Helper()
	a := mat.RandomF64(m, k, rng)
	b := mat.RandomF64(k, n, rng)
	c := mat.RandomF64(m, n, rng)
	want := c.Clone()
	mat.RefGEMMF64(mat.NoTrans, mat.NoTrans, 1, a, b, beta, want)
	err := ctx.DGEMM(libshalom.NN, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
	if err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g, w := c.At(i, j), want.At(i, j)
			if math.Abs(g-w) > 1e-8*(1+math.Abs(w)) {
				t.Fatalf("f64 %dx%dx%d beta=%v: C(%d,%d) = %v, want %v", m, n, k, beta, i, j, g, w)
			}
		}
	}
	return nil
}
