package workloads

import "testing"

func TestSmallSquareSweep(t *testing.T) {
	s := SmallSquareSweep()
	if len(s) != 15 || s[0].M != 8 || s[len(s)-1].M != 120 {
		t.Fatalf("sweep wrong: %v", s)
	}
	for _, sh := range s {
		if sh.M != sh.N || sh.N != sh.K {
			t.Fatal("small sweep must be square")
		}
	}
}

func TestMotivationSweeps(t *testing.T) {
	sq := MotivationSquareSweep()
	if sq[0].M != 8 || sq[len(sq)-1].M != 4096 {
		t.Fatal("Fig 2a range wrong")
	}
	ir := MotivationIrregularSweep()
	for _, sh := range ir {
		if sh.N != 10000 || sh.K != 10000 {
			t.Fatal("Fig 2b must fix N=K=10000")
		}
	}
}

func TestIrregularSweeps(t *testing.T) {
	ns := IrregularNSweep(32)
	if len(ns) != 5 || ns[0].N != 2048 || ns[4].N != 10240 {
		t.Fatalf("N sweep wrong: %v", ns)
	}
	for _, sh := range ns {
		if sh.M != 32 || sh.K != 5000 {
			t.Fatal("Fig 9 fixes M and K=5000")
		}
	}
	ms := IrregularMSweep(64)
	for _, sh := range ms {
		if sh.N != 64 || sh.K != 5000 {
			t.Fatal("Fig 9 bottom row fixes N and K")
		}
	}
	if len(Fig9MValues()) != 4 {
		t.Fatal("Fig 9 uses four fixed values")
	}
}

func TestCP2KShapes(t *testing.T) {
	c := CP2K()
	if len(c) != 5 {
		t.Fatalf("Fig 14 has five kernels, got %d", len(c))
	}
	if c[0].M != 5 || c[3].M != 23 || c[4].K != 13 {
		t.Fatalf("CP2K shapes wrong: %v", c)
	}
	for _, s := range c {
		if s.M < 4 || s.M > 32 || s.K < 4 || s.K > 32 {
			t.Fatalf("CP2K sizes must lie in 4..32 (§8.6): %v", s)
		}
	}
}

func TestVGGLayers(t *testing.T) {
	v := VGG()
	if len(v) != 5 {
		t.Fatal("Fig 15 uses five layers")
	}
	wantM := []int{64, 128, 256, 512, 512}
	wantN := []int{50176, 12544, 3136, 784, 196}
	wantK := []int{576, 1152, 2304, 4608, 4608}
	for i, l := range v {
		if l.M != wantM[i] || l.N != wantN[i] || l.K != wantK[i] {
			t.Fatalf("layer %s = %+v", l.Name, l)
		}
	}
	sk := ScalabilityKernel()
	if sk.M != 64 || sk.N != 50176 || sk.K != 576 {
		t.Fatal("Fig 11 kernel must be VGG conv1.2")
	}
}

func TestFig12And13Sweeps(t *testing.T) {
	ks := Fig12KSweep()
	if ks[0].K != 576 || ks[len(ks)-1].K != 3744 {
		t.Fatalf("Fig 12 K range wrong: %d..%d", ks[0].K, ks[len(ks)-1].K)
	}
	if ks[1].K-ks[0].K != 128 {
		t.Fatal("Fig 12 step must be 128")
	}
	ms := Fig13MSweep()
	if len(ms) != 5 || ms[0].M != 20 || ms[4].M != 100 {
		t.Fatalf("Fig 13 M sweep wrong: %v", ms)
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{M: 2, N: 3, K: 4}
	if s.Flops() != 48 {
		t.Fatal("flops wrong")
	}
	if s.String() != "2x3x4" {
		t.Fatalf("String = %q", s.String())
	}
	if (Shape{Name: "x", M: 1, N: 1, K: 1}).String() != "x (1x1x1)" {
		t.Fatal("named String wrong")
	}
}
