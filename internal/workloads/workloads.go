// Package workloads defines the evaluation inputs of §7.2 and §8.6: the
// small-square and irregular-shaped synthetic sweeps, the CP2K molecular-
// dynamics FP64 kernel sizes, and the VGG16 convolution layers expressed as
// GEMM (im2col), plus deterministic random initialization matching the
// paper's methodology (uniform (0,1) values).
package workloads

import "fmt"

// Shape is one GEMM problem size.
type Shape struct {
	Name    string
	M, N, K int
}

// String renders the M×N×K triple.
func (s Shape) String() string {
	if s.Name != "" {
		return fmt.Sprintf("%s (%dx%dx%d)", s.Name, s.M, s.N, s.K)
	}
	return fmt.Sprintf("%dx%dx%d", s.M, s.N, s.K)
}

// Flops returns the 2·M·N·K operation count.
func (s Shape) Flops() float64 { return 2 * float64(s.M) * float64(s.N) * float64(s.K) }

// SmallSquareSweep returns the Fig 7/8 sweep: M=N=K from 8 to 120 in steps
// of 8 (§7.2: sizes typical of SeisSol and NekBox kernels).
func SmallSquareSweep() []Shape {
	var out []Shape
	for sz := 8; sz <= 120; sz += 8 {
		out = append(out, Shape{M: sz, N: sz, K: sz})
	}
	return out
}

// MotivationSquareSweep returns the Fig 2a sweep: powers of two from 8 to
// 4096.
func MotivationSquareSweep() []Shape {
	var out []Shape
	for sz := 8; sz <= 4096; sz *= 2 {
		out = append(out, Shape{M: sz, N: sz, K: sz})
	}
	return out
}

// MotivationIrregularSweep returns the Fig 2b sweep: M from 8 to 4096 with
// N = K = 10000.
func MotivationIrregularSweep() []Shape {
	var out []Shape
	for m := 8; m <= 4096; m *= 2 {
		out = append(out, Shape{M: m, N: 10000, K: 10000})
	}
	return out
}

// IrregularNSweep returns one Fig 9 row: fixed M, N from 2048 to 10240 in
// steps of 2048, K = 5000.
func IrregularNSweep(m int) []Shape {
	var out []Shape
	for n := 2048; n <= 10240; n += 2048 {
		out = append(out, Shape{M: m, N: n, K: 5000})
	}
	return out
}

// IrregularMSweep returns one Fig 9 bottom-row subplot: fixed N, M swept.
func IrregularMSweep(n int) []Shape {
	var out []Shape
	for m := 2048; m <= 10240; m += 2048 {
		out = append(out, Shape{M: m, N: n, K: 5000})
	}
	return out
}

// Fig9MValues lists the fixed small dimensions of Fig 9/10.
func Fig9MValues() []int { return []int{32, 64, 128, 256} }

// CP2K returns the FP64 kernel sizes of Fig 14 (§8.6, matrix sizes 4–32
// from the CP2K simulation package).
func CP2K() []Shape {
	return []Shape{
		{Name: "cp2k-5", M: 5, N: 5, K: 5},
		{Name: "cp2k-13x5", M: 13, N: 5, K: 13},
		{Name: "cp2k-13", M: 13, N: 13, K: 13},
		{Name: "cp2k-23", M: 23, N: 23, K: 23},
		{Name: "cp2k-26x26x13", M: 26, N: 26, K: 13},
	}
}

// VGGLayer is one VGG16 convolution expressed as GEMM.
type VGGLayer struct {
	Name    string
	M, N, K int
}

// VGG returns the five conv layers of Fig 15 (§8.6): M = {64, 128, 256,
// 512, 512}, N = {50176, 12544, 3136, 784, 196}, K = {576, 1152, 2304,
// 4608, 4608}.
func VGG() []VGGLayer {
	return []VGGLayer{
		{Name: "conv1.2", M: 64, N: 50176, K: 576},
		{Name: "conv2.2", M: 128, N: 12544, K: 1152},
		{Name: "conv3.3", M: 256, N: 3136, K: 2304},
		{Name: "conv4.2", M: 512, N: 784, K: 4608},
		{Name: "conv5.2", M: 512, N: 196, K: 4608},
	}
}

// ScalabilityKernel is the Fig 11 workload: the VGG conv1.2 GEMM
// 64×50176×576.
func ScalabilityKernel() Shape {
	return Shape{Name: "vgg-conv1.2", M: 64, N: 50176, K: 576}
}

// Fig12KSweep returns the K values of the L2-miss experiment (§8.4):
// 576 to 3744 in steps of 128, with M=64 and N=50176.
func Fig12KSweep() []Shape {
	var out []Shape
	for k := 576; k <= 3744; k += 128 {
		out = append(out, Shape{M: 64, N: 50176, K: k})
	}
	// 3744 is not reachable from 576 in steps of 128; include the paper's
	// stated endpoint explicitly.
	if out[len(out)-1].K != 3744 {
		out = append(out, Shape{M: 64, N: 50176, K: 3744})
	}
	return out
}

// Fig13MSweep returns the breakdown experiment's M values (§8.5): 20 to 100
// step 20 with the VGG conv1.2 N and K.
func Fig13MSweep() []Shape {
	var out []Shape
	for m := 20; m <= 100; m += 20 {
		out = append(out, Shape{M: m, N: 50176, K: 576})
	}
	return out
}
