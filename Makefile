GO ?= go

.PHONY: build test vet staticlint race lint check fuzz test-chaos test-soak probe trace-smoke serve-smoke journal-smoke attrib-smoke router-smoke tune-smoke

build:
	$(GO) build ./...

# go vet runs twice: once on the default build, once under the
# telemetryprobe tag so the probe-only sources stay vetted and compiling.
vet:
	$(GO) vet ./...
	$(GO) vet -tags telemetryprobe ./...

# The project's own analyzers (cmd/shalom-vet): hot-path invariants
# (//shalom:hotpath), telemetry nil-guard discipline, context propagation,
# and atomic access discipline. Runs on the default build and under the
# telemetryprobe tag, where the probe sources join the hot paths.
staticlint:
	$(GO) run ./cmd/shalom-vet ./...
	$(GO) run ./cmd/shalom-vet -tags telemetryprobe ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages run again under the race detector:
# the thread pool, the blocked GEMM driver that feeds it, and the serving
# front end that coalesces concurrent requests onto the batch path.
race:
	$(GO) test -race ./internal/parallel/... ./internal/core/... ./internal/heal/... ./internal/server/... ./internal/router/...

# Fault-injection chaos suite: every injected fault (kernel panic, corrupt
# packing buffer, slow worker, spurious NaN) must surface as a typed error
# or a correct degraded result, with the runtime still usable afterwards.
# Runs under the race detector because the faults fire inside pool workers.
test-chaos:
	$(GO) test -race ./internal/faults/... ./internal/guard/... ./internal/parallel/...

# Self-healing soak: a few seconds of public-API calls under a randomized
# fault schedule (SHALOM_SOAK_SEED reproduces a run, SHALOM_SOAK_SECONDS
# stretches it). Every nil error must be numerically correct, every non-nil
# error typed, and all breakers must converge back to healthy once the
# schedule stops.
test-soak:
	SHALOM_SOAK=1 $(GO) test -count=1 -run TestSoakRandomFaultSchedule -v ./internal/heal/

# Telemetry overhead budget, enforced by counting instead of timing: the
# telemetryprobe build tag compiles a counter into every telemetry
# atomic-write site, and the probe test requires exactly zero writes on the
# telemetry-off hot path (plus >0 on the enabled path, so the probe itself
# is known to be wired).
probe:
	$(GO) test -tags telemetryprobe -run '^$$' -count=1 ./...
	$(GO) test -tags telemetryprobe -run 'TestTelemetryProbe' ./...

# Trace smoke test: drive a small workload mix through a telemetry-enabled
# context, export the Chrome trace_event JSON, and validate it (well-formed,
# per-lane monotonic timestamps, balanced name-matched B/E pairs).
trace-smoke:
	$(GO) run ./cmd/shalom-top -once -duration 200ms -mix small \
		-trace $${TMPDIR:-/tmp}/shalom-trace-smoke.json -validate

# Serving-layer smoke test: race-enabled shalom-serve on an ephemeral port,
# a closed-loop shalom-load storm (64 requests, 16 workers), asserting every
# request answered, the /metrics coalesce counter > 0 (at least one flush of
# batch size > 1), and a clean SIGTERM drain with zero dropped admitted
# requests.
serve-smoke:
	sh scripts/serve-smoke.sh

# Attribution smoke test: race-enabled shalom-serve with fast attribution
# windows and the slow-shape-class chaos point armed against "small", a
# mixed shalom-load storm, then assertions that the seeded regression
# surfaces as a drift event and the top-ranked tuning candidate in /attrib,
# in the Prometheus exposition, and in shalom-top's heat view, followed by
# a clean drain.
attrib-smoke:
	sh scripts/attrib-smoke.sh

# Autotuner smoke test: race-enabled shalom-serve with -autotune and a
# deliberately detuned f32/small serving tile, a storm until the closed loop
# runs search -> prove -> canary -> promote, then assertions that the
# promotion surfaces in /tune, the Prometheus exposition, shalom-top's tune
# view, a measurably faster small-mix load run, and a verifiable journal
# tune-promote record, followed by a clean drain.
tune-smoke:
	sh scripts/tune-smoke.sh

# Router smoke test: three shalom-serve backends behind a race-enabled
# shalom-router, a storm with a SIGKILL of one backend mid-storm (zero lost
# requests — hedged retries route around the corpse), assertions that the
# dead backend is ejected and, once restarted on its old port, readmitted
# (both visible in the router's /metrics), and a clean SIGTERM rolling drain.
router-smoke:
	sh scripts/router-smoke.sh

# Journal smoke test: the full forensic loop — capture a journaled storm,
# SIGTERM-seal it, shalom-journal verify, prove a single flipped byte fails
# verification, then replay the capture against a fresh server and require
# every completed request to reproduce its journaled result hash bitwise.
journal-smoke:
	sh scripts/journal-smoke.sh

# Static kernel verification: every registered micro-kernel must clear all
# six isacheck passes (including the symbolic footprint proof) on every
# modelled platform.
lint:
	$(GO) run ./cmd/shalom-lint -all

# A short bounded fuzz of the ISA analyzer (the tier-1 suite runs only the
# seed corpus; this explores a little further).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAnalyze -fuzztime=10s ./internal/isa/

# The CI gate.
check: vet staticlint build test race test-chaos test-soak probe trace-smoke serve-smoke router-smoke journal-smoke attrib-smoke tune-smoke lint
