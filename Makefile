GO ?= go

.PHONY: build test vet race lint check fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages run again under the race detector:
# the thread pool and the blocked GEMM driver that feeds it.
race:
	$(GO) test -race ./internal/parallel/... ./internal/core/...

# Static kernel verification: every registered micro-kernel must clear all
# five isacheck passes on every modelled platform.
lint:
	$(GO) run ./cmd/shalom-lint -all

# A short bounded fuzz of the ISA analyzer (the tier-1 suite runs only the
# seed corpus; this explores a little further).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAnalyze -fuzztime=10s ./internal/isa/

# The CI gate.
check: vet build test race lint
