package libshalom

import (
	"testing"

	"libshalom/internal/mat"
)

// FuzzSGEMM is a native Go fuzz target: it derives a GEMM problem from the
// fuzzer's bytes, runs the public API and checks the result against the
// naive reference. Run continuously with
//
//	go test -fuzz FuzzSGEMM -fuzztime 30s .
//
// The seed corpus runs as part of the normal test suite.
func FuzzSGEMM(f *testing.F) {
	f.Add(uint16(8), uint16(8), uint16(8), byte(0), int16(100), int16(0), uint64(1))
	f.Add(uint16(7), uint16(12), uint16(4), byte(1), int16(-50), int16(150), uint64(2))
	f.Add(uint16(1), uint16(95), uint16(33), byte(2), int16(25), int16(-75), uint64(3))
	f.Add(uint16(64), uint16(1), uint16(1), byte(3), int16(0), int16(100), uint64(4))
	f.Fuzz(func(t *testing.T, mRaw, nRaw, kRaw uint16, modeRaw byte, alphaRaw, betaRaw int16, seed uint64) {
		m := int(mRaw%96) + 1
		n := int(nRaw%96) + 1
		k := int(kRaw % 64) // zero K allowed
		mode := []Mode{NN, NT, TN, TT}[modeRaw%4]
		alpha := float32(alphaRaw) / 100
		beta := float32(betaRaw) / 100
		rng := mat.NewRNG(seed)

		la := mat.RandomF32(m, max2(1, k), rng)
		lb := mat.RandomF32(max2(1, k), n, rng)
		la = la.View(0, 0, m, k)
		lb = lb.View(0, 0, k, n)
		a, b := la, lb
		ta, tb := mat.NoTrans, mat.NoTrans
		if mode.TransA() && k > 0 {
			a, ta = la.Transpose(), mat.Transpose
		}
		if mode.TransB() && k > 0 {
			b, tb = lb.Transpose(), mat.Transpose
		}
		if k == 0 {
			// Zero-K operands: give them legal minimal storage.
			a = &mat.F32{Rows: rowsFor(mode.TransA(), m, k), Cols: colsFor(mode.TransA(), m, k), Stride: max2(1, colsFor(mode.TransA(), m, k)), Data: []float32{}}
			b = &mat.F32{Rows: rowsFor(mode.TransB(), k, n), Cols: colsFor(mode.TransB(), k, n), Stride: max2(1, colsFor(mode.TransB(), k, n)), Data: []float32{}}
		}
		c := mat.RandomF32(m, n, rng)
		want := c.Clone()
		if k > 0 {
			mat.RefGEMMF32(ta, tb, alpha, a, b, beta, want)
		} else {
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					want.Set(i, j, beta*want.At(i, j))
				}
			}
		}
		if err := SGEMM(mode, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride); err != nil {
			t.Fatalf("SGEMM failed: %v (m%d n%d k%d %v)", err, m, n, k, mode)
		}
		if !c.Equal(want, 2e-2) {
			t.Fatalf("mismatch: max diff %g (m%d n%d k%d %v α%v β%v)", c.MaxDiff(want), m, n, k, mode, alpha, beta)
		}
	})
}

// rowsFor/colsFor give the stored shape of an operand with logical rows r
// and cols c under an optional transpose.
func rowsFor(trans bool, r, c int) int {
	if trans {
		return c
	}
	return r
}

func colsFor(trans bool, r, c int) int {
	if trans {
		return r
	}
	return c
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
