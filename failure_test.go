package libshalom_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"libshalom"
)

func refGEMM(m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(a[i*k+p]) * float64(b[p*n+j])
			}
			c[i*n+j] = alpha*float32(acc) + beta*c[i*n+j]
		}
	}
}

func fill(s []float32, seed uint32) {
	x := seed | 1
	for i := range s {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		s[i] = float32(x%1000)/1000 - 0.5
	}
}

// WithAliasCheck: overlapping C storage is rejected up front with the
// exported ErrAliasedBatch; adjacent-but-disjoint views pass. The exported
// CheckSBatchAliasing gives callers the same check directly.
func TestPublicAliasChecking(t *testing.T) {
	ctx := libshalom.New(libshalom.WithAliasCheck(), libshalom.WithThreads(1))
	defer ctx.Close()
	a := make([]float32, 16)
	fill(a, 3)
	backing := make([]float32, 48)
	mk := func(c []float32) libshalom.SBatchEntry {
		return libshalom.SBatchEntry{M: 4, N: 4, K: 4, Alpha: 1,
			A: a, LDA: 4, B: a, LDB: 4, Beta: 0, C: c, LDC: 4}
	}
	disjoint := []libshalom.SBatchEntry{mk(backing[0:16]), mk(backing[16:32])}
	if err := libshalom.CheckSBatchAliasing(disjoint); err != nil {
		t.Fatalf("CheckSBatchAliasing rejected disjoint views: %v", err)
	}
	if err := ctx.SGEMMBatch(libshalom.NN, disjoint); err != nil {
		t.Fatalf("disjoint batch rejected: %v", err)
	}
	overlap := []libshalom.SBatchEntry{mk(backing[0:16]), mk(backing[8:24])}
	if err := libshalom.CheckSBatchAliasing(overlap); !errors.Is(err, libshalom.ErrAliasedBatch) {
		t.Fatalf("CheckSBatchAliasing = %v, want ErrAliasedBatch", err)
	}
	if err := ctx.SGEMMBatch(libshalom.NN, overlap); !errors.Is(err, libshalom.ErrAliasedBatch) {
		t.Fatalf("aliased batch: err = %v, want ErrAliasedBatch", err)
	}
	// FP64 flavour of the exported check.
	dBacking := make([]float64, 32)
	dmk := func(c []float64) libshalom.DBatchEntry {
		return libshalom.DBatchEntry{M: 4, N: 4, K: 4, Alpha: 1,
			A: make([]float64, 16), LDA: 4, B: make([]float64, 16), LDB: 4, Beta: 0, C: c, LDC: 4}
	}
	if err := libshalom.CheckDBatchAliasing([]libshalom.DBatchEntry{dmk(dBacking[0:16]), dmk(dBacking[8:24])}); !errors.Is(err, libshalom.ErrAliasedBatch) {
		t.Fatalf("CheckDBatchAliasing = %v, want ErrAliasedBatch", err)
	}
}

// SGEMMBatchCtx with a cancelled context returns context.Canceled through a
// *BatchCancelError and runs nothing.
func TestPublicBatchCtxCancelled(t *testing.T) {
	c := libshalom.New(libshalom.WithThreads(2))
	defer c.Close()
	a := make([]float32, 36)
	fill(a, 5)
	out := make([]float32, 36)
	batch := []libshalom.SBatchEntry{{M: 6, N: 6, K: 6, Alpha: 1,
		A: a, LDA: 6, B: a, LDB: 6, Beta: 0, C: out, LDC: 6}}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.SGEMMBatchCtx(cctx, libshalom.NN, batch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var bce *libshalom.BatchCancelError
	if !errors.As(err, &bce) || bce.Completed != 0 || bce.Total != 1 {
		t.Fatalf("err = %v, want *BatchCancelError with 0/1 accounting", err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("entry ran under a cancelled context (out[%d]=%v)", i, v)
		}
	}
	// The same call with a live context completes and matches the oracle.
	if err := c.SGEMMBatchCtx(context.Background(), libshalom.NN, batch); err != nil {
		t.Fatalf("live-context batch failed: %v", err)
	}
	want := make([]float32, 36)
	refGEMM(6, 6, 6, 1, a, a, 0, want)
	for i := range out {
		if math.Abs(float64(out[i]-want[i])) > 1e-4 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// WithNumericGuard on a healthy library: results unchanged, nothing
// demoted, and the degradation surface is reachable through the public API.
func TestPublicNumericGuardHealthyPath(t *testing.T) {
	libshalom.ResetDegradations()
	defer libshalom.ResetDegradations()
	c := libshalom.New(libshalom.WithNumericGuard(), libshalom.WithThreads(1))
	defer c.Close()
	m, n, k := 17, 13, 9
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	out := make([]float32, m*n)
	fill(a, 7)
	fill(b, 9)
	if err := c.SGEMM(libshalom.NN, m, n, k, 1, a, k, b, n, 0, out, n); err != nil {
		t.Fatalf("guarded SGEMM failed: %v", err)
	}
	want := make([]float32, m*n)
	refGEMM(m, n, k, 1, a, b, 0, want)
	for i := range out {
		if math.Abs(float64(out[i]-want[i])) > 1e-4 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if ds := libshalom.Degradations(); len(ds) != 0 {
		t.Fatalf("healthy guarded run demoted kernels: %+v", ds)
	}
	if ds := libshalom.DegradationsFor(libshalom.KP920()); len(ds) != 0 {
		t.Fatalf("DegradationsFor reports demotions: %+v", ds)
	}
}

// BatchCompleted unwraps a cancelled batch's per-entry accounting: Done
// marks exactly the entries that ran, wrapped errors unwrap, and non-batch
// errors report !ok.
func TestBatchCompletedUnwrapsAccounting(t *testing.T) {
	c := libshalom.New(libshalom.WithThreads(1))
	defer c.Close()
	a := make([]float32, 36)
	fill(a, 11)
	outs := make([][]float32, 3)
	batch := make([]libshalom.SBatchEntry, 3)
	for i := range batch {
		outs[i] = make([]float32, 36)
		batch[i] = libshalom.SBatchEntry{M: 6, N: 6, K: 6, Alpha: 1,
			A: a, LDA: 6, B: a, LDB: 6, Beta: 0, C: outs[i], LDC: 6}
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.SGEMMBatchCtx(cctx, libshalom.NN, batch)
	done, ok := libshalom.BatchCompleted(err)
	if !ok {
		t.Fatalf("BatchCompleted did not recognise %v", err)
	}
	if len(done) != len(batch) {
		t.Fatalf("len(done) = %d, want %d", len(done), len(batch))
	}
	for i, d := range done {
		if d {
			t.Fatalf("entry %d marked done under a pre-cancelled context", i)
		}
		for j, v := range outs[i] {
			if v != 0 {
				t.Fatalf("un-done entry %d has written C[%d]=%v", i, j, v)
			}
		}
	}
	// Wrapped errors still unwrap; unrelated errors do not.
	if _, ok := libshalom.BatchCompleted(fmt.Errorf("flush: %w", err)); !ok {
		t.Fatal("BatchCompleted does not see through wrapping")
	}
	if _, ok := libshalom.BatchCompleted(errors.New("unrelated")); ok {
		t.Fatal("BatchCompleted claimed an unrelated error")
	}
	if _, ok := libshalom.BatchCompleted(nil); ok {
		t.Fatal("BatchCompleted claimed a nil error")
	}
}
