// VGG example: run the VGG16 convolution layers as im2col GEMMs (§8.6,
// Fig 15) — the irregular-shaped workloads the paper targets — through the
// parallel driver, verify the results, and print the modeled chip
// throughput across the paper's platforms.
//
//	go run ./examples/vgg
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"libshalom"
	"libshalom/internal/mat"
	"libshalom/internal/workloads"
)

func main() {
	ctx := libshalom.New(libshalom.WithThreads(runtime.GOMAXPROCS(0)))
	defer ctx.Close()
	rng := mat.NewRNG(7)

	fmt.Printf("VGG16 conv layers as NT-mode GEMM (this machine, %d threads):\n", runtime.GOMAXPROCS(0))
	for _, layer := range workloads.VGG() {
		// Scale N down so the demo stays quick; the shape class (N >> M)
		// is what matters.
		n := layer.N
		if n > 4096 {
			n = 4096
		}
		a := mat.RandomF32(layer.M, layer.K, rng) // filter matrix
		bt := mat.RandomF32(n, layer.K, rng)      // im2col patches, stored N×K (NT)
		c := mat.NewF32(layer.M, n)
		start := time.Now()
		if err := ctx.SGEMM(libshalom.NT, layer.M, n, layer.K, 1, a.Data, a.Stride, bt.Data, bt.Stride, 0, c.Data, c.Stride); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start).Seconds()
		gf := 2 * float64(layer.M) * float64(n) * float64(layer.K) / el / 1e9
		// Spot-check one output against the reference.
		want := mat.NewF32(layer.M, n)
		mat.RefGEMMF32(mat.NoTrans, mat.Transpose, 1, a, bt, 0, want)
		fmt.Printf("  %-8s %4dx%5dx%4d  %7.2f GFLOPS  max|diff| %.2e\n",
			layer.Name, layer.M, n, layer.K, gf, c.MaxDiff(want))
	}

	fmt.Println("\nModeled full-size layers on the paper's platforms (Fig 15 reproduction):")
	for _, plat := range []*libshalom.Platform{libshalom.Phytium2000(), libshalom.KP920(), libshalom.ThunderX2()} {
		fmt.Printf("  %s (%d cores):\n", plat.Name, plat.Cores)
		for _, layer := range workloads.VGG() {
			ls, err := libshalom.Predict(libshalom.ImplLibShalom(), plat, libshalom.NT,
				layer.M, layer.N, layer.K, 4, plat.Cores, false)
			if err != nil {
				log.Fatal(err)
			}
			ob, err := libshalom.Predict(libshalom.ImplOpenBLAS(), plat, libshalom.NT,
				layer.M, layer.N, layer.K, 4, plat.Cores, false)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-8s LibShalom %7.0f GF (%4.1f%% peak)  OpenBLAS %6.0f GF\n",
				layer.Name, ls.GFLOPS, ls.PercentOfPeak, ob.GFLOPS)
		}
	}
}
