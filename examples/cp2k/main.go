// CP2K example: run the FP64 small-GEMM kernels a molecular-dynamics
// simulation performs (§8.6, Fig 14) — batches of tiny matrix products —
// through the library, measure wall-clock throughput, and compare with the
// modeled throughput on the paper's ARMv8 platforms.
//
//	go run ./examples/cp2k
package main

import (
	"fmt"
	"log"
	"time"

	"libshalom"
	"libshalom/internal/mat"
	"libshalom/internal/workloads"
)

func main() {
	ctx := libshalom.New() // batch calls parallelize across problems (§7.4)
	defer ctx.Close()
	rng := mat.NewRNG(42)

	fmt.Println("CP2K-style FP64 kernel batches (this machine, wall clock, batched API):")
	for _, sh := range workloads.CP2K() {
		// A batch of independent small products, as CP2K's DBCSR issues:
		// each entry has its own operands and output.
		const batchSize = 4000
		entries := make([]libshalom.DBatchEntry, batchSize)
		for i := range entries {
			a := mat.RandomF64(sh.M, sh.K, rng)
			b := mat.RandomF64(sh.K, sh.N, rng)
			c := mat.NewF64(sh.M, sh.N)
			entries[i] = libshalom.DBatchEntry{
				M: sh.M, N: sh.N, K: sh.K, Alpha: 1,
				A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride,
				Beta: 0, C: c.Data, LDC: c.Stride,
			}
		}
		start := time.Now()
		if err := ctx.DGEMMBatch(libshalom.NN, entries); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start).Seconds()
		gf := sh.Flops() * batchSize / el / 1e9
		fmt.Printf("  %-14s %8.2f GFLOPS (%d independent products in %.0f ms)\n", sh, gf, batchSize, el*1000)
	}

	fmt.Println("\nModeled throughput on the paper's platforms (Fig 14 reproduction):")
	for _, plat := range []*libshalom.Platform{libshalom.Phytium2000(), libshalom.KP920(), libshalom.ThunderX2()} {
		fmt.Printf("  %s:\n", plat.Name)
		for _, sh := range workloads.CP2K() {
			ls, err := libshalom.Predict(libshalom.ImplLibShalom(), plat, libshalom.NN, sh.M, sh.N, sh.K, 8, 1, true)
			if err != nil {
				log.Fatal(err)
			}
			xsmm, err := libshalom.Predict(libshalom.ImplLIBXSMM(), plat, libshalom.NN, sh.M, sh.N, sh.K, 8, 1, true)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-14s LibShalom %6.1f GF  vs LIBXSMM %6.1f GF  (%.2fx)\n",
				sh, ls.GFLOPS, xsmm.GFLOPS, ls.GFLOPS/xsmm.GFLOPS)
		}
	}
}
