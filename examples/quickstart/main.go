// Quickstart: multiply two small matrices with the LibShalom reproduction's
// public API and check the result against a naive product.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"libshalom"
)

func main() {
	// The 8×8×8 GEMM the paper's introduction motivates (NekBox kernels).
	const m, n, k = 8, 8, 8
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(i%7) * 0.5
	}
	for i := range b {
		b[i] = float32(i%5) * 0.25
	}

	// C = 1.0 * A·B + 0.0 * C, row-major, NN mode.
	if err := libshalom.SGEMM(libshalom.NN, m, n, k, 1, a, k, b, n, 0, c, n); err != nil {
		log.Fatal(err)
	}

	// Verify against a naive triple loop.
	maxDiff := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a[i*k+p] * b[p*n+j]
			}
			if d := math.Abs(float64(c[i*n+j] - acc)); d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("C[0][0..3] = %.3f %.3f %.3f %.3f\n", c[0], c[1], c[2], c[3])
	fmt.Printf("max |difference| vs naive product: %g\n", maxDiff)

	// The analytic models behind the library are queryable.
	tile := libshalom.MicroKernelTile(4)
	fmt.Printf("FP32 micro-kernel tile: %dx%d (CMR %.2f, %d registers)\n", tile.MR, tile.NR, tile.CMR, tile.Regs)
	part := libshalom.PartitionFor(2048, 256, 64)
	fmt.Printf("parallel partition for 2048x256 on 64 cores: Tm=%d Tn=%d (paper §6.1 example)\n", part.TM, part.TN)
}
