// Autotune example: the paper's future-work direction (§10) — open up the
// kernel parameters to a search instead of fixing the analytic optimum.
// This example sweeps every feasible (mr, nr) register tile through the
// instruction-level timing model on all three platforms (internal/tuner)
// and compares the empirically best tile with the analytic CMR solution of
// Eq. 1–2, demonstrating that the paper's closed-form answer is at (or
// within noise of) the optimum the search finds.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"libshalom/internal/analytic"
	"libshalom/internal/platform"
	"libshalom/internal/tuner"
)

func main() {
	const elem = 4 // FP32
	analyticTile := analytic.SolveForElem(elem)
	fmt.Printf("analytic optimum (Eq. 1-2): %dx%d, CMR %.2f\n\n", analyticTile.MR, analyticTile.NR, analyticTile.CMR)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "platform\tbest searched tile\tGFLOPS/core\tanalytic tile\tGFLOPS/core\tverdict")
	for _, p := range platform.All() {
		r := tuner.SearchTile(p, elem)
		verdict := "analytic tile optimal"
		if r.Best.GFLOPS > r.Analytic.GFLOPS*1.001 {
			verdict = fmt.Sprintf("search wins by %.1f%%", 100*(r.Best.GFLOPS/r.Analytic.GFLOPS-1))
		}
		fmt.Fprintf(tw, "%s\t%dx%d\t%.1f\t%dx%d\t%.1f\t%s\n",
			p.Name, r.Best.MR, r.Best.NR, r.Best.GFLOPS,
			r.Analytic.MR, r.Analytic.NR, r.Analytic.GFLOPS, verdict)
	}
	tw.Flush()

	// Show the top of one platform's ranking to make the tradeoff visible.
	fmt.Println("\ntop five tiles on Kunpeng 920 (modeled):")
	r := tuner.SearchTile(platform.KP920(), elem)
	for i, c := range r.Candidates {
		if i == 5 {
			break
		}
		fmt.Printf("  %2dx%-2d  %6.1f GFLOPS  (CMR %.2f)\n", c.MR, c.NR, c.GFLOPS, c.CMR)
	}
}
