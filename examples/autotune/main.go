// Autotune example: the paper's future-work direction (§10) — open up the
// kernel parameters to a search instead of fixing the analytic optimum.
//
// Part one sweeps every feasible (mr, nr) register tile through the
// instruction-level timing model on all three platforms (internal/tuner)
// and compares the empirically best tile with the analytic CMR solution of
// Eq. 1–2, demonstrating that the paper's closed-form answer is at (or
// within noise of) the optimum the search finds.
//
// Part two runs the closed loop that internal/autotune builds on that
// search: it seeds a deliberately detuned serving tile on the f32/small
// class (the state an operator misconfiguration or a stale promotion would
// leave behind), asks the engine to tune the class now, and walks the full
// lifecycle — search inside the proven generator-family domain, the
// isacheck + vexec proof gate, canary-shadowed live traffic, and the final
// promotion — printing the engine's /tune-style report at each state.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"libshalom/internal/analytic"
	"libshalom/internal/autotune"
	"libshalom/internal/core"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
	"libshalom/internal/tuner"
)

func main() {
	const elem = 4 // FP32
	analyticTile := analytic.SolveForElem(elem)
	fmt.Printf("analytic optimum (Eq. 1-2): %dx%d, CMR %.2f\n\n", analyticTile.MR, analyticTile.NR, analyticTile.CMR)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "platform\tbest searched tile\tGFLOPS/core\tanalytic tile\tGFLOPS/core\tverdict")
	for _, p := range platform.All() {
		r := tuner.SearchTile(p, elem)
		verdict := "analytic tile optimal"
		if r.Best.GFLOPS > r.Analytic.GFLOPS*1.001 {
			verdict = fmt.Sprintf("search wins by %.1f%%", 100*(r.Best.GFLOPS/r.Analytic.GFLOPS-1))
		}
		fmt.Fprintf(tw, "%s\t%dx%d\t%.1f\t%dx%d\t%.1f\t%s\n",
			p.Name, r.Best.MR, r.Best.NR, r.Best.GFLOPS,
			r.Analytic.MR, r.Analytic.NR, r.Analytic.GFLOPS, verdict)
	}
	tw.Flush()

	// Show the top of one platform's ranking to make the tradeoff visible.
	fmt.Println("\ntop five tiles on Kunpeng 920 (modeled):")
	r := tuner.SearchTile(platform.KP920(), elem)
	for i, c := range r.Candidates {
		if i == 5 {
			break
		}
		fmt.Printf("  %2dx%-2d  %6.1f GFLOPS  (CMR %.2f)\n", c.MR, c.NR, c.GFLOPS, c.CMR)
	}

	closedLoop()
}

// closedLoop demos the traffic-adaptive autotuner end to end against a
// deliberately detuned f32/small serving tile.
func closedLoop() {
	plat := platform.KP920()
	const small = uint8(telemetry.ShapeSmall)

	fmt.Println("\n--- closed-loop tuning of a detuned class (internal/autotune) ---")

	// Seed the bad state: a 1x4 kc 8 serving tile on f32/small — the same
	// seed shalom-serve -detune-class installs for the smoke test.
	path := guard.MintOverridePath(4, "small")
	guard.SetOverride(4, small, guard.TileOverride{
		MR: 1, NR: 4, KC: 8, Kernel: "detuned-1x4", Path: path,
	})
	fmt.Println("seeded f32/small with a detuned 1x4 kc 8 serving tile")

	// Canary every small-class call so the demo settles in a handful of
	// GEMMs instead of a stride-sampled storm.
	prev := heal.Configure(heal.Config{CanaryStride: 1})
	defer heal.Configure(prev)

	tel := telemetry.New(telemetry.Options{})
	eng := autotune.New(autotune.Config{Recorder: tel, Platform: plat})
	if err := eng.TuneNow("f32", "small"); err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		os.Exit(1)
	}
	report := func() {
		rep := eng.Report()
		for _, c := range rep.Classes {
			fmt.Printf("  %s/%s: %-9s %s (incumbent %s %.1f -> candidate %.1f GFLOPS modeled)\n",
				c.Precision, c.ShapeClass, c.State, c.Kernel,
				c.IncumbentKernel, c.IncumbentGFLOPS, c.CandidateGFLOPS)
		}
	}
	fmt.Println("TuneNow: searched the proven family domain, proof gate passed, canary installed")
	report()

	// Live traffic: every canaried call runs the tuned tile shadowed by the
	// reference path; agreement closes the breaker at the canary target.
	m, n, k := telemetry.RepresentativeShape(telemetry.ShapeSmall)
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(i%7) * 0.25
	}
	for i := range b {
		b[i] = float32(i%5) * 0.5
	}
	cfg := core.Config{Plat: plat, Threads: 1, NumericGuard: true, Tel: tel}
	calls := heal.Current().CanaryTarget + 2
	for i := 0; i < calls; i++ {
		c := make([]float32, m*n)
		if err := core.SGEMM(cfg, core.NN, m, n, k, 1, a, k, b, n, 0, c, n); err != nil {
			fmt.Fprintln(os.Stderr, "SGEMM:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("drove %d small-class GEMMs through the canary shadow — all agreed\n", calls)

	// The next loop tick sees the closed breaker and promotes.
	eng.Step()
	report()

	snap := tel.Snapshot()
	fmt.Printf("lifecycle events: search %d, proved %d, canary %d, promoted %d, reverted %d\n",
		snap.Autotune.Count("search"), snap.Autotune.Count("proved"),
		snap.Autotune.Count("canary"), snap.Autotune.Count("promoted"),
		snap.Autotune.Count("reverted"))

	guard.Reset() // leave no override behind for other examples sharing the process
}
