package libshalom

// Column-major entry points. The library computes in row-major form; the
// standard GEMM duality maps a column-major call onto it exactly:
//
//	C_col = α·op(A)·op(B) + β·C_col
//
// is the same memory-level computation as
//
//	C_row' = α·op(B)'·op(A)' + β·C_row'
//
// where X' reinterprets X's column-major storage as row-major (a free
// transpose of the view), the operands swap positions, and M and N swap
// roles. Transposition flags carry over unchanged. These wrappers exist so
// Fortran-layout callers (the audience of BLASFEO and ARMPL) can use the
// library without copying data.

// colMode maps (transA, transB) of a column-major call to the row-major
// mode of the swapped-operand computation: the first row-major operand is
// the caller's B with its own flag, the second is A with its flag.
func colMode(transA, transB bool) Mode {
	switch {
	case !transB && !transA:
		return NN
	case !transB && transA:
		return NT
	case transB && !transA:
		return TN
	default:
		return TT
	}
}

// SGEMMColMajor computes C = alpha·op(A)·op(B) + beta·C with column-major
// operands: op(A) is m×k, op(B) is k×n, C is m×n; lda/ldb/ldc are
// column strides (Fortran leading dimensions). transA/transB select
// transposition exactly as BLAS 'T' flags do.
func (c *Context) SGEMMColMajor(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, cOut []float32, ldc int) error {
	return c.SGEMM(colMode(transA, transB), n, m, k, alpha, b, ldb, a, lda, beta, cOut, ldc)
}

// DGEMMColMajor is the double-precision counterpart of SGEMMColMajor.
func (c *Context) DGEMMColMajor(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, cOut []float64, ldc int) error {
	return c.DGEMM(colMode(transA, transB), n, m, k, alpha, b, ldb, a, lda, beta, cOut, ldc)
}

// SGEMMColMajor runs on the default context.
func SGEMMColMajor(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) error {
	return defaultCtx.SGEMMColMajor(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEMMColMajor runs on the default context.
func DGEMMColMajor(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) error {
	return defaultCtx.DGEMMColMajor(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}
