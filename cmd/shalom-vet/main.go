// Command shalom-vet runs the libshalom static analyzers: hotpath
// (annotation-driven allocation/lock/block/clock freedom on GEMM hot
// paths), telemetrypure (nil-receiver guard discipline on telemetry
// Recorder and journal Writer write methods), ctxflow (no context
// minting in library code), and
// atomicdiscipline (no mixed atomic/plain field access, 32-bit
// alignment safety).
//
// Usage:
//
//	shalom-vet [-tags taglist] [-analyzers a,b] [packages]
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"os"

	"libshalom/internal/staticlint"
)

func main() {
	os.Exit(staticlint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
