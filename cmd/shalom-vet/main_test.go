package main

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"libshalom/internal/staticlint"
)

const fixtures = "../../internal/staticlint"

func runVet(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := staticlint.Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestVetExitCodes(t *testing.T) {
	if code, out, _ := runVet("-dir", fixtures, "./testdata/src/hotclean"); code != staticlint.ExitClean {
		t.Errorf("clean fixture: code %d, out %q", code, out)
	}
	code, out, _ := runVet("-dir", fixtures, "./testdata/src/hotbad")
	if code != staticlint.ExitFindings {
		t.Errorf("violating fixture: code %d, want %d", code, staticlint.ExitFindings)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) == 0 || !sort.StringsAreSorted(lines) {
		t.Errorf("findings not sorted:\n%s", out)
	}
	for _, l := range lines {
		if !strings.Contains(l, ": hotpath: ") {
			t.Errorf("line not in file:line:col: analyzer: message form: %q", l)
		}
	}
	if code, _, _ := runVet("-nosuchflag"); code != staticlint.ExitUsage {
		t.Errorf("bad flag: code %d, want %d", code, staticlint.ExitUsage)
	}
	if code, _, _ := runVet("-dir", fixtures, "./testdata/src/nosuchpkg"); code != staticlint.ExitUsage {
		t.Errorf("unloadable pattern: code %d, want %d", code, staticlint.ExitUsage)
	}
}
