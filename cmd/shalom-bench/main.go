// Command shalom-bench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 2, 6–15) from the reproduction's models and
// prints the rows/series the paper reports.
//
// Usage:
//
//	shalom-bench -list
//	shalom-bench -exp fig7
//	shalom-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"libshalom/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment id to run (or \"all\")")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
			fmt.Printf("  %-8s paper: %s\n", "", e.Paper)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			fmt.Printf("=== %s ===\n", e.Title)
			e.Run(os.Stdout)
			fmt.Println()
		}
		return
	}
	e := bench.ByID(*exp)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	fmt.Printf("=== %s ===\n", e.Title)
	fmt.Printf("paper: %s\n\n", e.Paper)
	e.Run(os.Stdout)
}
