// Command shalom-serve runs the GEMM serving front end: an HTTP server that
// accepts small and irregular GEMM requests (JSON header + little-endian
// binary payload, see internal/server), coalesces concurrent requests of
// one (precision, mode, shape class) into single batch dispatches on a
// shared Context, sheds load once its admission bounds fill, and drains
// gracefully on SIGINT/SIGTERM — stop accepting, flush resident batches,
// answer every admitted request, close the Context.
//
// Usage:
//
//	shalom-serve [-addr 127.0.0.1:8080] [-addr-file FILE]
//	             [-platform kp920] [-threads N]
//	             [-window 200us] [-max-batch 64] [-max-queue 1024]
//	             [-max-inflight-flops 4e9] [-default-timeout 0]
//	             [-deadline 0] [-no-retry]
//	             [-journal DIR] [-journal-fsync anchor|always|none]
//	             [-journal-segment-bytes N] [-journal-payloads]
//	             [-attrib] [-attrib-window 1s] [-attrib-margin 0.35]
//	             [-attrib-windows 3] [-attrib-min-calls 16]
//	             [-autotune] [-autotune-interval 2s] [-autotune-margin 0.1]
//	             [-autotune-min-score 0.01]
//	             [-detune-class CLASS]
//	             [-pprof]
//	             [-chaos-slow-class CLASS] [-chaos-slow-delay 2ms]
//
// The server always runs with telemetry: GET /metrics serves the Prometheus
// exposition (driver metrics plus the serving-layer counters), /healthz the
// self-healing breaker state (503 while any breaker is open on the serving
// platform), /snapshot and /trace the usual telemetry views.
//
// -attrib (on by default) runs the live performance-attribution engine:
// GET /attrib serves the rolling efficiency accounts, drift events, and the
// ranked tuning-candidate feed; /metrics grows the attribution gauge
// family, and drift events are logged as they fire. -pprof mounts
// net/http/pprof under /debug/pprof/ for live profiling; it is off by
// default. -chaos-slow-class arms the slow-shape-class fault point against
// one class (tiny, small, medium, large, irregular) — the attribution
// smoke test uses it to seed a visible regression.
//
// -autotune runs the traffic-adaptive kernel tuning loop on top of the
// attribution feed: hot × underperforming shape classes are searched over
// the proven generator-family domain, candidates pass the full proof gate
// (isacheck contract + symbolic family proof + vexec-vs-reference
// validation), and the winner is hot-swapped in as a dispatch override
// behind a canary breaker. GET /tune serves the per-class state machine;
// promotions and reverts land in the journal when one is configured.
// -detune-class seeds a deliberately bad serving tile on one f32 class —
// the smoke test uses it to give the autotuner something to beat.
//
// -journal DIR enables the tamper-evident request journal: every admitted
// request, flush, result, and breaker transition lands in merkle-anchored
// segments under DIR (verify them with shalom-journal, replay them with
// shalom-load -replay). -journal-payloads additionally captures operand
// payloads — required for replay, off by default.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"libshalom"
	"libshalom/internal/attrib"
	"libshalom/internal/autotune"
	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/journal"
	"libshalom/internal/platform"
	"libshalom/internal/server"
	"libshalom/internal/telemetry"
)

// parseShapeClass resolves a class label (tiny, small, medium, large,
// irregular) to its telemetry index.
func parseShapeClass(name string) (uint8, bool) {
	for _, c := range telemetry.ShapeClasses() {
		if c.String() == name {
			return uint8(c), true
		}
	}
	return 0, false
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	platName := flag.String("platform", "kp920", "platform model (kp920, phytium2000, thunderx2)")
	threads := flag.Int("threads", 0, "thread width of the shared context (0 = automatic policy)")
	window := flag.Duration("window", 200*time.Microsecond, "coalescing window")
	maxBatch := flag.Int("max-batch", 64, "flush a class queue at this many resident requests")
	maxQueue := flag.Int("max-queue", 1024, "per-class admission queue bound (shed beyond it)")
	maxInFlight := flag.Float64("max-inflight-flops", 4e9, "admitted-but-unanswered flops bound (shed beyond it)")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline for requests that carry none (0 = unbounded)")
	deadline := flag.Duration("deadline", 0, "per-call watchdog budget on the shared context (0 = off)")
	noRetry := flag.Bool("no-retry", false, "disable the transient-fault retry: kernel panics fail the batch instead of degrading it")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may take")
	journalDir := flag.String("journal", "", "enable the tamper-evident request journal in this directory")
	journalFsync := flag.String("journal-fsync", "anchor", "journal durability policy: anchor, always, or none")
	journalSegBytes := flag.Int64("journal-segment-bytes", 8<<20, "rotate journal segments at this size")
	journalPayloads := flag.Bool("journal-payloads", false, "capture operand payloads in admit records (required for -replay)")
	attribOn := flag.Bool("attrib", true, "run the performance-attribution engine (serves /attrib)")
	attribWindow := flag.Duration("attrib-window", time.Second, "attribution accounting window")
	attribMargin := flag.Float64("attrib-margin", 0.35, "relative shortfall below calibrated par that counts as drift")
	attribWindows := flag.Int("attrib-windows", 3, "consecutive below-par windows before a drift event fires")
	attribMinCalls := flag.Uint64("attrib-min-calls", 16, "clean calls a window needs before a key is scored")
	autotuneOn := flag.Bool("autotune", false, "run the traffic-adaptive kernel tuning loop (serves /tune)")
	autotuneInterval := flag.Duration("autotune-interval", 2*time.Second, "tuning loop period")
	autotuneMargin := flag.Float64("autotune-margin", 0.10, "modeled-throughput improvement a candidate must show over the incumbent")
	autotuneMinScore := flag.Float64("autotune-min-score", 0.01, "attribution score (hot share × shortfall) floor for tuning a class")
	detuneClass := flag.String("detune-class", "", "seed a deliberately bad f32 serving tile on this class (tiny, small, medium, large, irregular)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	chaosSlowClass := flag.String("chaos-slow-class", "", "arm the slow-shape-class fault point against this class (tiny, small, medium, large, irregular)")
	chaosSlowDelay := flag.Duration("chaos-slow-delay", 2*time.Millisecond, "per-call delay the armed slow-shape-class point injects")
	flag.Parse()

	plat := platform.ByName(*platName)
	if plat == nil {
		fmt.Fprintf(os.Stderr, "shalom-serve: unknown platform %q\n", *platName)
		os.Exit(2)
	}
	opts := []libshalom.Option{
		libshalom.WithPlatform(plat),
		libshalom.WithTelemetry(),
		libshalom.WithThreads(*threads),
	}
	if *deadline > 0 {
		opts = append(opts, libshalom.WithDeadline(*deadline))
	}
	if *noRetry {
		opts = append(opts, libshalom.WithoutTransientRetry())
	}
	lib := libshalom.New(opts...)

	var jw *journal.Writer
	if *journalDir != "" {
		policy, err := journal.ParseFsyncPolicy(*journalFsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-serve:", err)
			os.Exit(2)
		}
		jw, err = journal.Open(journal.Options{
			Dir:             *journalDir,
			SegmentBytes:    *journalSegBytes,
			Fsync:           policy,
			CapturePayloads: *journalPayloads,
			Telemetry:       lib.TelemetryRecorder(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-serve:", err)
			os.Exit(1)
		}
		if n := jw.Truncated(); n > 0 {
			fmt.Printf("shalom-serve: journal recovery truncated a %d-byte torn tail\n", n)
		}
		// Breaker trips and closes flow into the journal alongside the
		// requests that provoked them.
		guard.SetTransitionObserver(jw.GuardObserver())
	}

	if *chaosSlowClass != "" {
		class, ok := parseShapeClass(*chaosSlowClass)
		if !ok {
			fmt.Fprintf(os.Stderr, "shalom-serve: unknown shape class %q\n", *chaosSlowClass)
			os.Exit(2)
		}
		faults.SetSlowClass(class, *chaosSlowDelay)
		faults.Arm(faults.SlowShapeClass, faults.Unlimited)
		fmt.Printf("shalom-serve: CHAOS slow-shape-class armed: %s += %v per call\n",
			*chaosSlowClass, *chaosSlowDelay)
	}

	var eng *attrib.Engine
	if *attribOn {
		eng = attrib.New(attrib.Config{
			Recorder:       lib.TelemetryRecorder(),
			Platform:       plat,
			Window:         *attribWindow,
			Margin:         *attribMargin,
			DriftWindows:   *attribWindows,
			MinWindowCalls: *attribMinCalls,
			OnDrift: func(ev attrib.DriftEvent) {
				fmt.Printf("shalom-serve: DRIFT %s/%s/%s/%s: %.2f GFLOPS measured vs %.2f predicted (rel-eff %.2f, %d windows below par)\n",
					ev.Precision, ev.Mode, ev.ShapeClass, ev.Kernel,
					ev.Measured, ev.Predicted, ev.RelEff, ev.Windows)
			},
		})
		eng.Start()
		defer eng.Close()
	}

	if *detuneClass != "" {
		class, ok := parseShapeClass(*detuneClass)
		if !ok || class == uint8(telemetry.ShapeEmpty) {
			fmt.Fprintf(os.Stderr, "shalom-serve: unknown shape class %q\n", *detuneClass)
			os.Exit(2)
		}
		path := guard.MintOverridePath(4, *detuneClass)
		guard.SetOverride(4, class, guard.TileOverride{
			MR: 1, NR: 4, KC: 8, Kernel: "detuned-1x4", Path: path,
		})
		fmt.Printf("shalom-serve: DETUNE seeded f32/%s with tile 1x4 kc 8 (%s)\n",
			*detuneClass, path)
	}

	var tuner *autotune.Engine
	if *autotuneOn {
		tuner = autotune.New(autotune.Config{
			Recorder: lib.TelemetryRecorder(),
			Attrib:   eng,
			Platform: plat,
			Interval: *autotuneInterval,
			Margin:   *autotuneMargin,
			MinScore: *autotuneMinScore,
			Journal:  jw,
		})
		tuner.Start()
	}

	// The lifecycle context parents every flush's batch context. It is NOT
	// the signal context: a drain triggered by SIGTERM still has to run its
	// final flushes, so it only cancels after the drain completes (process
	// exit). This is the root the ctxflow analyzer makes library code
	// inherit instead of minting its own.
	lifecycle, stop := context.WithCancel(context.Background())
	defer stop()

	srv := server.New(lib, server.Config{
		Window:           *window,
		MaxBatch:         *maxBatch,
		MaxQueue:         *maxQueue,
		MaxInFlightFlops: int64(*maxInFlight),
		DefaultTimeout:   *defaultTimeout,
		BaseContext:      lifecycle,
		Journal:          jw,
		Attrib:           eng,
		Autotune:         tuner,
		Pprof:            *pprofOn,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-serve:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "shalom-serve:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("shalom-serve: listening on %s (platform %s, window %v, max-batch %d)\n",
		bound, plat.Name, *window, *maxBatch)

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("shalom-serve: %v — draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "shalom-serve:", err)
		os.Exit(1)
	}

	// The drain protocol: stop admitting and answer every admitted request
	// first, then shut the listener down (handlers are only writing
	// responses by then), then release the context's pool.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shalom-serve: drain:", err)
		os.Exit(1)
	}
	if tuner != nil {
		// Stop tuning before the journal seals so a racing promotion cannot
		// append to a closed writer.
		tuner.Close()
		rep := tuner.Report()
		fmt.Printf("shalom-serve: autotune — searched %d, proved %d, rejected %d, canaried %d, promoted %d, reverted %d\n",
			rep.Searched, rep.Proved, rep.Rejected, rep.Canaried, rep.Promoted, rep.Reverted)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shalom-serve: shutdown:", err)
		os.Exit(1)
	}
	lib.Close()
	if jw != nil {
		guard.SetTransitionObserver(nil)
		if err := jw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "shalom-serve: journal close:", err)
			os.Exit(1)
		}
		js := jw.Status()
		fmt.Printf("shalom-serve: journal sealed — segment %d, %d records, %d anchors, chain head %s\n",
			js.Segment, js.Records, js.Anchors, js.ChainHead)
	}

	if eng != nil {
		eng.Close()
		fmt.Printf("shalom-serve: attribution — %d windows closed, %d drift events\n",
			eng.Windows(), eng.DriftTotal())
	}
	snap := lib.Snapshot()
	sv := snap.Server
	fmt.Printf("shalom-serve: drained — accepted %d, coalesced %d, shed %d, expired %d, rejected %d, flushes %d\n",
		sv.Accepted, sv.Coalesced, sv.Shed, sv.Expired, sv.Rejected, sv.Flushes)
}
