// Command shalom-verify exhaustively cross-checks every runnable GEMM in
// the repository — LibShalom's driver and all five baseline strategy
// implementations — against the naive reference, over a randomized sweep of
// shapes, modes, scalars and thread counts. It exits non-zero on the first
// mismatch.
package main

import (
	"flag"
	"fmt"
	"os"

	"libshalom/internal/baselines"
	"libshalom/internal/core"
	"libshalom/internal/isagemm"
	"libshalom/internal/mat"
	"libshalom/internal/platform"
)

func main() {
	iters := flag.Int("n", 300, "number of random cases per implementation")
	maxDim := flag.Int("max", 96, "maximum dimension")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	rng := mat.NewRNG(*seed)
	plats := platform.All()
	fails := 0

	check := func(name string, run func(mode core.Mode, m, n, k int, alpha float32, a *mat.F32, b *mat.F32, beta float32, c *mat.F32) error) {
		for i := 0; i < *iters; i++ {
			m := rng.Intn(*maxDim) + 1
			n := rng.Intn(*maxDim) + 1
			k := rng.Intn(*maxDim) + 1
			mode := core.Modes()[rng.Intn(4)]
			alpha := float32(rng.Float64()*4 - 2)
			beta := float32(rng.Float64()*4 - 2)
			la := mat.RandomF32(m, k, rng)
			lb := mat.RandomF32(k, n, rng)
			a, b := la, lb
			ta, tb := mat.NoTrans, mat.NoTrans
			if mode.TransA() {
				a, ta = la.Transpose(), mat.Transpose
			}
			if mode.TransB() {
				b, tb = lb.Transpose(), mat.Transpose
			}
			c := mat.RandomF32(m, n, rng)
			want := c.Clone()
			mat.RefGEMMF32(ta, tb, alpha, a, b, beta, want)
			if err := run(mode, m, n, k, alpha, a, b, beta, c); err != nil {
				fmt.Printf("FAIL %s: %v (case %dx%dx%d %v)\n", name, err, m, n, k, mode)
				fails++
				return
			}
			if !c.Equal(want, 2e-2) {
				fmt.Printf("FAIL %s: max diff %g (case %dx%dx%d %v alpha=%v beta=%v)\n",
					name, c.MaxDiff(want), m, n, k, mode, alpha, beta)
				fails++
				return
			}
		}
		fmt.Printf("ok   %-10s %d randomized cases\n", name, *iters)
	}

	check("LibShalom", func(mode core.Mode, m, n, k int, alpha float32, a, b *mat.F32, beta float32, c *mat.F32) error {
		plat := plats[rng.Intn(len(plats))]
		threads := []int{1, 2, 4, 8}[rng.Intn(4)]
		return core.SGEMM(core.Config{Plat: plat, Threads: threads}, mode, m, n, k,
			alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
	})
	for _, lib := range baselines.All() {
		lib := lib
		check(lib.String(), func(mode core.Mode, m, n, k int, alpha float32, a, b *mat.F32, beta float32, c *mat.F32) error {
			plat := plats[rng.Intn(len(plats))]
			threads := []int{1, 4}[rng.Intn(2)]
			return baselines.SGEMM(lib, plat, threads, mode, m, n, k,
				alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		})
	}

	// ISA-level execution path: the whole GEMM through virtual-NEON
	// programs must match the reference on a randomized small sweep.
	isaFails := 0
	for i := 0; i < *iters/5; i++ {
		m := rng.Intn(28) + 1
		n := rng.Intn(28) + 1
		k := rng.Intn(20) + 1
		a := mat.RandomF32(m, k, rng)
		b := mat.RandomF32(k, n, rng)
		c := mat.RandomF32(m, n, rng)
		want := c.Clone()
		mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1.25, a, b, 0.75, want)
		if err := isagemm.SGEMM(m, n, k, 1.25, a.Data, a.Stride, b.Data, b.Stride, 0.75, c.Data, c.Stride); err != nil {
			fmt.Printf("FAIL isagemm: %v\n", err)
			isaFails++
			break
		}
		if !c.Equal(want, 1e-2) {
			fmt.Printf("FAIL isagemm: max diff %g (case %dx%dx%d)\n", c.MaxDiff(want), m, n, k)
			isaFails++
			break
		}
	}
	if isaFails == 0 {
		fmt.Printf("ok   %-10s %d randomized ISA-path cases\n", "ISA-GEMM", *iters/5)
	}
	fails += isaFails

	// FP64 sweep over the LibShalom driver (the baselines share the same
	// generic machinery, so one double-precision pass suffices for them).
	for i := 0; i < *iters/3; i++ {
		m := rng.Intn(*maxDim) + 1
		n := rng.Intn(*maxDim) + 1
		k := rng.Intn(*maxDim) + 1
		mode := core.Modes()[rng.Intn(4)]
		la := mat.RandomF64(m, k, rng)
		lb := mat.RandomF64(k, n, rng)
		a, b := la, lb
		ta, tb := mat.NoTrans, mat.NoTrans
		if mode.TransA() {
			a, ta = la.Transpose(), mat.Transpose
		}
		if mode.TransB() {
			b, tb = lb.Transpose(), mat.Transpose
		}
		c := mat.RandomF64(m, n, rng)
		want := c.Clone()
		mat.RefGEMMF64(ta, tb, 1.5, a, b, -0.5, want)
		if err := core.DGEMM(core.Config{Threads: []int{1, 4}[rng.Intn(2)]}, mode, m, n, k,
			1.5, a.Data, a.Stride, b.Data, b.Stride, -0.5, c.Data, c.Stride); err != nil {
			fmt.Printf("FAIL DGEMM: %v\n", err)
			fails++
			break
		}
		if !c.Equal(want, 1e-9) {
			fmt.Printf("FAIL DGEMM: max diff %g (case %dx%dx%d %v)\n", c.MaxDiff(want), m, n, k, mode)
			fails++
			break
		}
	}
	if fails == 0 {
		fmt.Printf("ok   %-10s %d randomized FP64 cases\n", "DGEMM", *iters/3)
	}

	if fails > 0 {
		fmt.Printf("%d implementation(s) failed verification\n", fails)
		os.Exit(1)
	}
	fmt.Println("all implementations verified against the reference")
}
