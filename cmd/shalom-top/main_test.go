package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"libshalom/internal/attrib"
	"libshalom/internal/autotune"
)

// sampleReport is a canned attribution report with one drifting hot key
// and one healthy key — the fixture the rendering tests assert against.
func sampleReport() attrib.Report {
	return attrib.Report{
		Platform:    "Kunpeng 920",
		WindowMs:    250,
		Windows:     12,
		Calibration: 0.021,
		DriftTotal:  1,
		Candidates: []attrib.Candidate{
			{
				Precision: "f32", Mode: "NN", ShapeClass: "small", Kernel: "fast",
				Calls: 4096, Windows: 12,
				MeasuredGFLOPS: 1.2, P50GFLOPS: 1.1, P99GFLOPS: 1.9,
				PredictedGFLOPS: 45.5, PeakGFLOPS: 83.2, RooflineGFLOPS: 83.2,
				RelEff: 0.31, Efficiency: 0.014,
				HotShare: 0.7, Shortfall: 0.69, Score: 0.483,
				Drifting: true, DriftEvents: 1,
			},
			{
				Precision: "f32", Mode: "NN", ShapeClass: "tiny", Kernel: "fast",
				Calls: 4096, Windows: 12,
				MeasuredGFLOPS: 0.4, P50GFLOPS: 0.4, P99GFLOPS: 0.5,
				PredictedGFLOPS: 19.0, PeakGFLOPS: 83.2, RooflineGFLOPS: 83.2,
				RelEff: 1.0, Efficiency: 0.005,
				HotShare: 0.3, Shortfall: 0, Score: 0,
			},
		},
		Events: []attrib.DriftEvent{{
			Precision: "f32", Mode: "NN", ShapeClass: "small", Kernel: "fast",
			Measured: 1.2, Predicted: 45.5, RelEff: 0.31, Windows: 2,
		}},
	}
}

// The heat view names every key, ranks the drifting hot key with the
// fullest bar, and prints the recent drift events.
func TestRenderAttribHeatView(t *testing.T) {
	var sb strings.Builder
	renderAttrib(&sb, sampleReport())
	out := sb.String()
	for _, want := range []string{
		"attribution — platform Kunpeng 920",
		"drift events 1",
		"small", "tiny", "DRIFT",
		strings.Repeat("#", heatBarWidth), // top score fills the bar
		"drift: f32/NN/small/fast",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("heat view missing %q:\n%s", want, out)
		}
	}
	// The drifting key outranks the healthy one in the listing.
	if strings.Index(out, "small") > strings.Index(out, "tiny") {
		t.Errorf("drifting small key not ranked first:\n%s", out)
	}
}

func TestRenderAttribEmptyFeed(t *testing.T) {
	var sb strings.Builder
	renderAttrib(&sb, attrib.Report{Platform: "Kunpeng 920"})
	if !strings.Contains(sb.String(), "no scored windows") {
		t.Errorf("empty feed not signposted:\n%s", sb.String())
	}
}

func TestHeatBar(t *testing.T) {
	if got := heatBar(0, 1); got != "" {
		t.Errorf("zero score drew %q", got)
	}
	if got := heatBar(1, 1); len(got) != heatBarWidth {
		t.Errorf("full score drew %d chars, want %d", len(got), heatBarWidth)
	}
	if got := heatBar(0.001, 1); len(got) != 1 {
		t.Errorf("tiny positive score drew %q, want a single tick", got)
	}
}

// run in the workload mode drives real GEMMs, renders the metrics table
// and the live attribution heat view, and exits 0.
func TestRunOnceRendersTableAndHeatView(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-mix", "small", "-duration", "150ms", "-once"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"shalom-top — mix small", "GFLOPS", "attribution — platform"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// -no-attrib suppresses the engine but keeps the heat-view footer working
// on the nil engine's zero report.
func TestRunNoAttrib(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-mix", "small", "-duration", "50ms", "-once", "-no-attrib"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no scored windows") {
		t.Errorf("nil-engine heat view not signposted:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-mix", "bogus", "-duration", "10ms"}, &out, &errb); code != 2 {
		t.Fatalf("unknown mix: run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown -mix") {
		t.Errorf("stderr does not explain the mix error:\n%s", errb.String())
	}
	if code := run([]string{"-validate"}, &out, &errb); code != 2 {
		t.Fatalf("-validate without -trace: run = %d, want 2", code)
	}
	if code := run([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: run = %d, want 2", code)
	}
}

// The remote mode fetches /attrib from a server base URL and renders the
// same heat view once.
func TestRunRemoteAttrib(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/attrib" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sampleReport())
	}))
	defer ts.Close()

	var out, errb strings.Builder
	if code := run([]string{"-attrib", ts.URL}, &out, &errb); code != 0 {
		t.Fatalf("remote attrib: run = %d, stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"DRIFT", "drift: f32/NN/small/fast", "Kunpeng 920"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("remote heat view missing %q:\n%s", want, out.String())
		}
	}

	// A dead endpoint is a clean failure, not a panic.
	ts.Close()
	if code := run([]string{"-attrib", ts.URL}, &out, &errb); code != 1 {
		t.Fatalf("dead endpoint: run = %d, want 1", code)
	}
}

// sampleTuneReport is a canned autotuner report with one promoted class and
// one rejected class — the fixture the tune-view tests assert against.
func sampleTuneReport() autotune.Report {
	return autotune.Report{
		Platform: "Kunpeng 920",
		Margin:   0.10,
		Searched: 3, Proved: 1, Rejected: 1, Canaried: 1, Promoted: 1,
		Classes: []autotune.ClassReport{
			{
				Precision: "f32", ShapeClass: "small", State: "promoted",
				Kernel: "tuned-7x12-kc16-pipelined", MR: 7, NR: 12, KC: 16,
				IncumbentKernel: "detuned-1x4", IncumbentGFLOPS: 6.9,
				CandidateGFLOPS: 41.6,
			},
			{
				Precision: "f64", ShapeClass: "medium", State: "rejected",
				IncumbentKernel: "analytic-7x6", IncumbentGFLOPS: 20.8,
				Detail: "no candidate beat the incumbent by the margin",
			},
		},
	}
}

// The tune view prints the lifetime counters and one row per class with its
// state, tuned-kernel tag, and incumbent/candidate throughput.
func TestRenderTune(t *testing.T) {
	var sb strings.Builder
	renderTune(&sb, sampleTuneReport())
	out := sb.String()
	for _, want := range []string{
		"autotune — platform Kunpeng 920, margin 10%",
		"promoted 1", "reverted 0",
		"promoted", "tuned-7x12-kc16-pipelined", "41.6", "6.9",
		"rejected", "no candidate beat the incumbent by the margin",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tune view missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTuneEmpty(t *testing.T) {
	var sb strings.Builder
	renderTune(&sb, autotune.Report{Platform: "Kunpeng 920"})
	if !strings.Contains(sb.String(), "no classes tuned yet") {
		t.Errorf("empty tune view not signposted:\n%s", sb.String())
	}
}

// The remote mode fetches /tune from a server base URL and renders the
// autotuner view once.
func TestRunRemoteTune(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/tune" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sampleTuneReport())
	}))
	defer ts.Close()

	var out, errb strings.Builder
	if code := run([]string{"-tune", ts.URL}, &out, &errb); code != 0 {
		t.Fatalf("remote tune: run = %d, stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"tuned-7x12-kc16-pipelined", "promoted", "Kunpeng 920"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("remote tune view missing %q:\n%s", want, out.String())
		}
	}

	// A dead endpoint is a clean failure, not a panic.
	ts.Close()
	if code := run([]string{"-tune", ts.URL}, &out, &errb); code != 1 {
		t.Fatalf("dead tune endpoint: run = %d, want 1", code)
	}
}
