// Command shalom-top runs a GEMM workload mix on a telemetry-enabled
// context and live-renders its metrics — a top(1)-style view of what the
// runtime is doing per (precision, mode, shape class, kernel, outcome),
// plus pool scheduling and thread-policy gauges and the attribution heat
// view (measured vs predicted vs roofline per key, with the tuning
// candidates ranked hottest-and-worst first). With -trace it also exports
// the phase spans of the run as Chrome trace_event JSON for
// chrome://tracing or ui.perfetto.dev, and -validate checks the exported
// file the same way `make trace-smoke` does.
//
// Usage:
//
//	shalom-top [-mix small|irregular|mixed] [-duration 5s] [-interval 500ms]
//	           [-threads N] [-once] [-no-attrib]
//	           [-trace FILE] [-validate]
//	shalom-top -attrib http://HOST:PORT
//	shalom-top -tune http://HOST:PORT
//
// The second and third forms do not drive a workload: -attrib fetches
// /attrib from a running shalom-serve, renders its attribution heat view
// once, and exits — the mode scripts/attrib-smoke.sh asserts against.
// -tune fetches /tune the same way and renders the autotuner view: one row
// per shape class with its tuning state and promoted-kernel tag — the mode
// scripts/tune-smoke.sh asserts against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"libshalom"
	"libshalom/internal/attrib"
	"libshalom/internal/autotune"
	"libshalom/internal/mat"
	"libshalom/internal/telemetry"
	"libshalom/internal/workloads"
)

// job is one pre-allocated GEMM problem the driver loop replays.
type job struct {
	mode          libshalom.Mode
	shape         workloads.Shape
	f64           bool
	a32, b32, c32 []float32
	a64, b64, c64 []float64
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, drives the workload (or
// the remote attribution fetch), and renders to stdout. It returns the
// process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shalom-top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mix := fs.String("mix", "mixed", "workload mix: small, irregular, or mixed")
	threads := fs.Int("threads", 0, "thread width (0 = automatic §7.4 policy)")
	duration := fs.Duration("duration", 5*time.Second, "how long to drive the workload")
	interval := fs.Duration("interval", 500*time.Millisecond, "refresh interval of the live table")
	once := fs.Bool("once", false, "run for -duration, print the table once, exit")
	noAttrib := fs.Bool("no-attrib", false, "skip the local attribution heat view")
	attribURL := fs.String("attrib", "", "fetch /attrib from this shalom-serve base URL, render its heat view once, exit")
	tuneURL := fs.String("tune", "", "fetch /tune from this shalom-serve base URL, render the autotuner view once, exit")
	tracePath := fs.String("trace", "", "write Chrome trace_event JSON to this file at exit")
	validate := fs.Bool("validate", false, "validate the exported trace (requires -trace)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *attribURL != "" {
		return runRemoteAttrib(*attribURL, stdout, stderr)
	}
	if *tuneURL != "" {
		return runRemoteTune(*tuneURL, stdout, stderr)
	}
	if *validate && *tracePath == "" {
		fmt.Fprintln(stderr, "shalom-top: -validate requires -trace FILE")
		return 2
	}
	jobs, err := buildJobs(*mix)
	if err != nil {
		fmt.Fprintln(stderr, "shalom-top:", err)
		return 2
	}

	ctx := libshalom.New(libshalom.WithTelemetry(), libshalom.WithThreads(*threads))
	defer ctx.Close()
	// The local heat view runs the attribution engine over this context's
	// own recorder; windows close on each render so the view is live.
	var eng *attrib.Engine
	if !*noAttrib {
		eng = attrib.New(attrib.Config{
			Recorder:       ctx.TelemetryRecorder(),
			Window:         *interval,
			MinWindowCalls: 1,
		})
	}

	deadline := time.Now().Add(*duration)
	nextRender := time.Now().Add(*interval)
	for i := 0; time.Now().Before(deadline); i++ {
		j := jobs[i%len(jobs)]
		if err := runJob(ctx, j); err != nil {
			fmt.Fprintln(stderr, "shalom-top: gemm failed:", err)
			return 1
		}
		if !*once && time.Now().After(nextRender) {
			fmt.Fprint(stdout, "\x1b[H\x1b[2J")
			eng.Step()
			render(stdout, ctx.Snapshot(), *mix)
			renderAttrib(stdout, eng.Report())
			nextRender = time.Now().Add(*interval)
		}
	}
	if !*once {
		fmt.Fprint(stdout, "\x1b[H\x1b[2J")
	}
	eng.Step()
	render(stdout, ctx.Snapshot(), *mix)
	renderAttrib(stdout, eng.Report())

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "shalom-top:", err)
			return 1
		}
		if err := ctx.ExportTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "shalom-top: trace export:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "shalom-top:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\ntrace written to %s\n", *tracePath)
		if *validate {
			f, err := os.Open(*tracePath)
			if err != nil {
				fmt.Fprintln(stderr, "shalom-top:", err)
				return 1
			}
			err = telemetry.ValidateTrace(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(stderr, "shalom-top: trace validation FAILED:", err)
				return 1
			}
			fmt.Fprintln(stdout, "trace validated: well-formed JSON, monotonic timestamps, balanced B/E pairs")
		}
	}
	return 0
}

// runRemoteAttrib fetches a running server's /attrib report and renders
// the heat view once — the scriptable remote mode.
func runRemoteAttrib(base string, stdout, stderr io.Writer) int {
	url := strings.TrimSuffix(base, "/")
	if !strings.HasSuffix(url, "/attrib") {
		url += "/attrib"
	}
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(stderr, "shalom-top:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		fmt.Fprintf(stderr, "shalom-top: GET %s: HTTP %d: %s\n", url, resp.StatusCode, strings.TrimSpace(string(body)))
		return 1
	}
	var rep attrib.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		fmt.Fprintf(stderr, "shalom-top: decoding %s: %v\n", url, err)
		return 1
	}
	renderAttrib(stdout, rep)
	return 0
}

// runRemoteTune fetches a running server's /tune report and renders the
// autotuner view once — the scriptable remote mode tune-smoke asserts
// against.
func runRemoteTune(base string, stdout, stderr io.Writer) int {
	url := strings.TrimSuffix(base, "/")
	if !strings.HasSuffix(url, "/tune") {
		url += "/tune"
	}
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(stderr, "shalom-top:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		fmt.Fprintf(stderr, "shalom-top: GET %s: HTTP %d: %s\n", url, resp.StatusCode, strings.TrimSpace(string(body)))
		return 1
	}
	var rep autotune.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		fmt.Fprintf(stderr, "shalom-top: decoding %s: %v\n", url, err)
		return 1
	}
	renderTune(stdout, rep)
	return 0
}

// buildJobs pre-allocates the operand matrices of the chosen mix so the
// driver loop measures GEMM, not allocation. Modes rotate across jobs so
// every transposition path shows up in the table.
func buildJobs(mix string) ([]job, error) {
	var shapes []workloads.Shape
	var f64From int // index of the first FP64 job; len(shapes) = none
	switch mix {
	case "small":
		shapes = workloads.SmallSquareSweep()
		f64From = len(shapes)
	case "irregular":
		// Panel-shaped problems in the §6 regime, scaled so one pass stays
		// interactive; the full Fig 9 sweeps belong to the bench harness.
		shapes = []workloads.Shape{
			{Name: "tall", M: 1024, N: 64, K: 64},
			{Name: "wide", M: 64, N: 1024, K: 64},
			{Name: "tall-deep", M: 2048, N: 32, K: 128},
			{Name: "wide-deep", M: 32, N: 2048, K: 128},
		}
		f64From = len(shapes)
	case "mixed":
		shapes = append(shapes, workloads.SmallSquareSweep()[:8]...)
		shapes = append(shapes,
			workloads.Shape{Name: "tall", M: 1024, N: 64, K: 64},
			workloads.Shape{Name: "wide", M: 64, N: 1024, K: 64},
			workloads.Shape{Name: "medium", M: 160, N: 160, K: 160},
		)
		f64From = len(shapes)
		shapes = append(shapes, workloads.CP2K()...) // FP64, CP2K §7.3 sizes
	default:
		return nil, fmt.Errorf("unknown -mix %q (want small, irregular, or mixed)", mix)
	}
	modes := []libshalom.Mode{libshalom.NN, libshalom.NT, libshalom.TN, libshalom.TT}
	rng := mat.NewRNG(1)
	jobs := make([]job, 0, len(shapes))
	for i, s := range shapes {
		j := job{mode: modes[i%len(modes)], shape: s, f64: i >= f64From}
		if j.f64 {
			j.a64 = mat.RandomF64(s.M, s.K, rng).Data
			j.b64 = mat.RandomF64(s.K, s.N, rng).Data
			j.c64 = make([]float64, s.M*s.N)
		} else {
			j.a32 = mat.RandomF32(s.M, s.K, rng).Data
			j.b32 = mat.RandomF32(s.K, s.N, rng).Data
			j.c32 = make([]float32, s.M*s.N)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// runJob issues one GEMM. Operands were allocated for the NN layout; the
// transposed modes reinterpret the same buffers (A is M×K or K×M with the
// matching leading dimension), which is exactly the reinterpretation the
// BLAS interface permits.
func runJob(ctx *libshalom.Context, j job) error {
	s := j.shape
	lda, ldb := s.K, s.N
	if j.mode.TransA() {
		lda = s.M
	}
	if j.mode.TransB() {
		ldb = s.K
	}
	if j.f64 {
		return ctx.DGEMM(j.mode, s.M, s.N, s.K, 1, j.a64, lda, j.b64, ldb, 0, j.c64, s.N)
	}
	return ctx.SGEMM(j.mode, s.M, s.N, s.K, 1, j.a32, lda, j.b32, ldb, 0, j.c32, s.N)
}

func render(w io.Writer, s libshalom.TelemetrySnapshot, mix string) {
	var totalCalls uint64
	for _, cs := range s.Calls {
		totalCalls += cs.Count
	}
	fmt.Fprintf(w, "shalom-top — mix %s — %d calls\n\n", mix, totalCalls)
	fmt.Fprintf(w, "%-5s %-4s %-9s %-6s %-9s %10s %12s %10s\n",
		"prec", "mode", "class", "kern", "outcome", "calls", "mean-lat", "GFLOPS")
	rows := append([]libshalom.TelemetryCallStat(nil), s.Calls...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	for _, cs := range rows {
		meanLat := time.Duration(0)
		if cs.Count > 0 {
			meanLat = time.Duration(cs.DurNs / cs.Count)
		}
		fmt.Fprintf(w, "%-5s %-4s %-9s %-6s %-9s %10d %12s %10.2f\n",
			cs.Precision, cs.Mode, cs.ShapeClass, cs.Kernel, cs.Outcome,
			cs.Count, meanLat, cs.MeanGFLOPS())
	}
	fmt.Fprintf(w, "\npool: queued %d, started %d, done %d, in-flight %d, queue-wait %s, busy %s\n",
		s.Pool.TasksQueued, s.Pool.TasksStarted, s.Pool.TasksDone, s.Pool.InFlight,
		time.Duration(s.Pool.QueueWaitNs), time.Duration(s.Pool.BusyNs))
	t := s.Threads
	meanReq, meanChose := 0.0, 0.0
	if t.Calls > 0 {
		meanReq = float64(t.RequestedSum) / float64(t.Calls)
		meanChose = float64(t.ChosenSum) / float64(t.Calls)
	}
	fmt.Fprintf(w, "threads: %d policy calls, mean requested %.1f, mean chosen %.1f, clamped %d\n",
		t.Calls, meanReq, meanChose, t.ClampedCalls)
	if len(s.Degradations) > 0 || len(s.Faults) > 0 {
		fmt.Fprintf(w, "events:")
		for _, e := range s.Degradations {
			fmt.Fprintf(w, " degraded/%s=%d", e.Name, e.Count)
		}
		for _, e := range s.Faults {
			fmt.Fprintf(w, " fault/%s=%d", e.Name, e.Count)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "trace: %d spans buffered, %d dropped\n", s.TraceSpans, s.TraceDropped)
}

// heatBarWidth is the width of the heat column.
const heatBarWidth = 10

// heatBar renders score relative to the feed's maximum as a bar: the
// hotter-and-worse a key, the fuller the bar.
func heatBar(score, max float64) string {
	if max <= 0 || score <= 0 {
		return ""
	}
	n := int(score/max*heatBarWidth + 0.5)
	if n < 1 {
		n = 1
	}
	if n > heatBarWidth {
		n = heatBarWidth
	}
	return strings.Repeat("#", n)
}

// renderAttrib prints the attribution heat view: one row per scored key,
// ranked by the tuning-candidate score, with measured vs predicted vs
// roofline columns and a DRIFT marker on latched keys.
func renderAttrib(w io.Writer, rep attrib.Report) {
	fmt.Fprintf(w, "\nattribution — platform %s, window %.0fms, %d windows, calibration %.3g, drift events %d\n",
		rep.Platform, rep.WindowMs, rep.Windows, rep.Calibration, rep.DriftTotal)
	if len(rep.Candidates) == 0 {
		fmt.Fprintln(w, "  (no scored windows yet)")
		return
	}
	fmt.Fprintf(w, "%-4s %-4s %-9s %-4s %8s %8s %8s %8s %8s %7s %6s %7s  %-10s %s\n",
		"prec", "mode", "class", "kern", "calls", "meas", "p99", "pred", "roof",
		"rel-eff", "hot%", "score", "heat", "")
	maxScore := rep.Candidates[0].Score
	for _, c := range rep.Candidates {
		if c.Score > maxScore {
			maxScore = c.Score
		}
	}
	for _, c := range rep.Candidates {
		marker := ""
		if c.Drifting {
			marker = "DRIFT"
		}
		fmt.Fprintf(w, "%-4s %-4s %-9s %-4s %8d %8.2f %8.2f %8.2f %8.2f %7.2f %6.1f %7.4f  %-10s %s\n",
			c.Precision, c.Mode, c.ShapeClass, c.Kernel, c.Calls,
			c.MeasuredGFLOPS, c.P99GFLOPS, c.PredictedGFLOPS, c.RooflineGFLOPS,
			c.RelEff, c.HotShare*100, c.Score, heatBar(c.Score, maxScore), marker)
	}
	for _, ev := range rep.Events {
		fmt.Fprintf(w, "drift: %s/%s/%s/%s — %.2f GFLOPS vs %.2f predicted (rel-eff %.2f after %d windows)\n",
			ev.Precision, ev.Mode, ev.ShapeClass, ev.Kernel,
			ev.Measured, ev.Predicted, ev.RelEff, ev.Windows)
	}
}

// renderTune prints the autotuner view: lifetime counters, then one row per
// tracked shape class with its lifecycle state and — once a candidate is
// canarying or promoted — the tuned-kernel tag and modeled uplift.
func renderTune(w io.Writer, rep autotune.Report) {
	fmt.Fprintf(w, "autotune — platform %s, margin %.0f%% — searched %d, proved %d, rejected %d, canaried %d, promoted %d, reverted %d\n",
		rep.Platform, rep.Margin*100, rep.Searched, rep.Proved, rep.Rejected,
		rep.Canaried, rep.Promoted, rep.Reverted)
	if len(rep.Classes) == 0 {
		fmt.Fprintln(w, "  (no classes tuned yet)")
		return
	}
	fmt.Fprintf(w, "%-4s %-9s %-10s %-28s %10s %10s  %s\n",
		"prec", "class", "state", "kernel", "incumbent", "candidate", "")
	for _, c := range rep.Classes {
		kern := c.Kernel
		if kern == "" {
			kern = "-"
		}
		inc, cand := "-", "-"
		if c.IncumbentGFLOPS > 0 {
			inc = fmt.Sprintf("%.1f", c.IncumbentGFLOPS)
		}
		if c.CandidateGFLOPS > 0 {
			cand = fmt.Sprintf("%.1f", c.CandidateGFLOPS)
		}
		fmt.Fprintf(w, "%-4s %-9s %-10s %-28s %10s %10s  %s\n",
			c.Precision, c.ShapeClass, c.State, kern, inc, cand, c.Detail)
	}
}
