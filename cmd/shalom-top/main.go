// Command shalom-top runs a GEMM workload mix on a telemetry-enabled
// context and live-renders its metrics — a top(1)-style view of what the
// runtime is doing per (precision, mode, shape class, kernel, outcome),
// plus pool scheduling and thread-policy gauges. With -trace it also
// exports the phase spans of the run as Chrome trace_event JSON for
// chrome://tracing or ui.perfetto.dev, and -validate checks the exported
// file the same way `make trace-smoke` does.
//
// Usage:
//
//	shalom-top [-mix small|irregular|mixed] [-duration 5s] [-interval 500ms]
//	           [-threads N] [-once] [-trace FILE] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"libshalom"
	"libshalom/internal/mat"
	"libshalom/internal/telemetry"
	"libshalom/internal/workloads"
)

// job is one pre-allocated GEMM problem the driver loop replays.
type job struct {
	mode          libshalom.Mode
	shape         workloads.Shape
	f64           bool
	a32, b32, c32 []float32
	a64, b64, c64 []float64
}

func main() {
	mix := flag.String("mix", "mixed", "workload mix: small, irregular, or mixed")
	threads := flag.Int("threads", 0, "thread width (0 = automatic §7.4 policy)")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive the workload")
	interval := flag.Duration("interval", 500*time.Millisecond, "refresh interval of the live table")
	once := flag.Bool("once", false, "run for -duration, print the table once, exit")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON to this file at exit")
	validate := flag.Bool("validate", false, "validate the exported trace (requires -trace)")
	flag.Parse()

	if *validate && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "shalom-top: -validate requires -trace FILE")
		os.Exit(2)
	}
	jobs, err := buildJobs(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-top:", err)
		os.Exit(2)
	}

	ctx := libshalom.New(libshalom.WithTelemetry(), libshalom.WithThreads(*threads))
	defer ctx.Close()

	deadline := time.Now().Add(*duration)
	nextRender := time.Now().Add(*interval)
	for i := 0; time.Now().Before(deadline); i++ {
		j := jobs[i%len(jobs)]
		if err := runJob(ctx, j); err != nil {
			fmt.Fprintln(os.Stderr, "shalom-top: gemm failed:", err)
			os.Exit(1)
		}
		if !*once && time.Now().After(nextRender) {
			fmt.Print("\x1b[H\x1b[2J")
			render(os.Stdout, ctx.Snapshot(), *mix)
			nextRender = time.Now().Add(*interval)
		}
	}
	if !*once {
		fmt.Print("\x1b[H\x1b[2J")
	}
	render(os.Stdout, ctx.Snapshot(), *mix)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-top:", err)
			os.Exit(1)
		}
		if err := ctx.ExportTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "shalom-top: trace export:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "shalom-top:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s\n", *tracePath)
		if *validate {
			f, err := os.Open(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "shalom-top:", err)
				os.Exit(1)
			}
			err = telemetry.ValidateTrace(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "shalom-top: trace validation FAILED:", err)
				os.Exit(1)
			}
			fmt.Println("trace validated: well-formed JSON, monotonic timestamps, balanced B/E pairs")
		}
	}
}

// buildJobs pre-allocates the operand matrices of the chosen mix so the
// driver loop measures GEMM, not allocation. Modes rotate across jobs so
// every transposition path shows up in the table.
func buildJobs(mix string) ([]job, error) {
	var shapes []workloads.Shape
	var f64From int // index of the first FP64 job; len(shapes) = none
	switch mix {
	case "small":
		shapes = workloads.SmallSquareSweep()
		f64From = len(shapes)
	case "irregular":
		// Panel-shaped problems in the §6 regime, scaled so one pass stays
		// interactive; the full Fig 9 sweeps belong to the bench harness.
		shapes = []workloads.Shape{
			{Name: "tall", M: 1024, N: 64, K: 64},
			{Name: "wide", M: 64, N: 1024, K: 64},
			{Name: "tall-deep", M: 2048, N: 32, K: 128},
			{Name: "wide-deep", M: 32, N: 2048, K: 128},
		}
		f64From = len(shapes)
	case "mixed":
		shapes = append(shapes, workloads.SmallSquareSweep()[:8]...)
		shapes = append(shapes,
			workloads.Shape{Name: "tall", M: 1024, N: 64, K: 64},
			workloads.Shape{Name: "wide", M: 64, N: 1024, K: 64},
			workloads.Shape{Name: "medium", M: 160, N: 160, K: 160},
		)
		f64From = len(shapes)
		shapes = append(shapes, workloads.CP2K()...) // FP64, CP2K §7.3 sizes
	default:
		return nil, fmt.Errorf("unknown -mix %q (want small, irregular, or mixed)", mix)
	}
	modes := []libshalom.Mode{libshalom.NN, libshalom.NT, libshalom.TN, libshalom.TT}
	rng := mat.NewRNG(1)
	jobs := make([]job, 0, len(shapes))
	for i, s := range shapes {
		j := job{mode: modes[i%len(modes)], shape: s, f64: i >= f64From}
		if j.f64 {
			j.a64 = mat.RandomF64(s.M, s.K, rng).Data
			j.b64 = mat.RandomF64(s.K, s.N, rng).Data
			j.c64 = make([]float64, s.M*s.N)
		} else {
			j.a32 = mat.RandomF32(s.M, s.K, rng).Data
			j.b32 = mat.RandomF32(s.K, s.N, rng).Data
			j.c32 = make([]float32, s.M*s.N)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// runJob issues one GEMM. Operands were allocated for the NN layout; the
// transposed modes reinterpret the same buffers (A is M×K or K×M with the
// matching leading dimension), which is exactly the reinterpretation the
// BLAS interface permits.
func runJob(ctx *libshalom.Context, j job) error {
	s := j.shape
	lda, ldb := s.K, s.N
	if j.mode.TransA() {
		lda = s.M
	}
	if j.mode.TransB() {
		ldb = s.K
	}
	if j.f64 {
		return ctx.DGEMM(j.mode, s.M, s.N, s.K, 1, j.a64, lda, j.b64, ldb, 0, j.c64, s.N)
	}
	return ctx.SGEMM(j.mode, s.M, s.N, s.K, 1, j.a32, lda, j.b32, ldb, 0, j.c32, s.N)
}

func render(w *os.File, s libshalom.TelemetrySnapshot, mix string) {
	var totalCalls uint64
	for _, cs := range s.Calls {
		totalCalls += cs.Count
	}
	fmt.Fprintf(w, "shalom-top — mix %s — %d calls\n\n", mix, totalCalls)
	fmt.Fprintf(w, "%-5s %-4s %-9s %-6s %-9s %10s %12s %10s\n",
		"prec", "mode", "class", "kern", "outcome", "calls", "mean-lat", "GFLOPS")
	rows := append([]libshalom.TelemetryCallStat(nil), s.Calls...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	for _, cs := range rows {
		meanLat := time.Duration(0)
		if cs.Count > 0 {
			meanLat = time.Duration(cs.DurNs / cs.Count)
		}
		fmt.Fprintf(w, "%-5s %-4s %-9s %-6s %-9s %10d %12s %10.2f\n",
			cs.Precision, cs.Mode, cs.ShapeClass, cs.Kernel, cs.Outcome,
			cs.Count, meanLat, cs.MeanGFLOPS())
	}
	fmt.Fprintf(w, "\npool: queued %d, started %d, done %d, in-flight %d, queue-wait %s, busy %s\n",
		s.Pool.TasksQueued, s.Pool.TasksStarted, s.Pool.TasksDone, s.Pool.InFlight,
		time.Duration(s.Pool.QueueWaitNs), time.Duration(s.Pool.BusyNs))
	t := s.Threads
	meanReq, meanChose := 0.0, 0.0
	if t.Calls > 0 {
		meanReq = float64(t.RequestedSum) / float64(t.Calls)
		meanChose = float64(t.ChosenSum) / float64(t.Calls)
	}
	fmt.Fprintf(w, "threads: %d policy calls, mean requested %.1f, mean chosen %.1f, clamped %d\n",
		t.Calls, meanReq, meanChose, t.ClampedCalls)
	if len(s.Degradations) > 0 || len(s.Faults) > 0 {
		fmt.Fprintf(w, "events:")
		for _, e := range s.Degradations {
			fmt.Fprintf(w, " degraded/%s=%d", e.Name, e.Count)
		}
		for _, e := range s.Faults {
			fmt.Fprintf(w, " fault/%s=%d", e.Name, e.Count)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "trace: %d spans buffered, %d dropped\n", s.TraceSpans, s.TraceDropped)
}
