// Command shalom-kernels prints the virtual-NEON instruction streams of the
// reproduction's micro-kernels — the analogue of the paper's assembly
// listings (Alg 2/3, Fig 6) — together with static analysis (register
// pressure, stream accesses, CMR) and per-platform timing from the
// scoreboard model.
//
// Usage:
//
//	shalom-kernels -kernel main -kc 8            # the 7x12 main kernel (Alg 2)
//	shalom-kernels -kernel ntpack -kc 8          # the 7x3 NT packing kernel (Alg 3)
//	shalom-kernels -kernel edge-batch -kc 4      # OpenBLAS 8x4 edge kernel (Fig 6a)
//	shalom-kernels -kernel edge-sched -kc 4      # LibShalom's reschedule (Fig 6b)
//	shalom-kernels -kernel packmain -kc 8 -fp64  # NN overlap-pack kernel, FP64
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"libshalom/internal/isa"
	"libshalom/internal/kernels"
	"libshalom/internal/platform"
	"libshalom/internal/uarch"
)

func main() {
	kernel := flag.String("kernel", "main", "main | packmain | ntpack | edge-batch | edge-sched")
	kc := flag.Int("kc", 8, "K extent of the emitted kernel (rounded to the vector width)")
	fp64 := flag.Bool("fp64", false, "emit the FP64 variant (main/packmain/ntpack only)")
	noDis := flag.Bool("q", false, "suppress the disassembly, print only analysis")
	flag.Parse()

	elem := 4
	if *fp64 {
		elem = 8
	}
	lanes := 16 / elem
	k := *kc
	if k%lanes != 0 {
		k += lanes - k%lanes
	}

	var p *isa.Program
	switch *kernel {
	case "main", "packmain":
		mr, nr := 7, 12
		if elem == 8 {
			mr, nr = 7, 6
		}
		p = kernels.BuildMain(kernels.MainSpec{
			Elem: elem, MR: mr, NR: nr, KC: k,
			LDA: k, LDB: nr, LDC: nr,
			Accumulate: true, PackB: *kernel == "packmain",
			Schedule: kernels.Pipelined,
		})
	case "ntpack":
		nrTotal := 12
		if elem == 8 {
			nrTotal = 6
		}
		p = kernels.BuildNTPack(kernels.NTPackSpec{
			Elem: elem, MR: 7, NB: 3, KC: k,
			LDA: k, LDBT: k, LDC: nrTotal, NRTotal: nrTotal, JOff: 0,
		})
	case "edge-batch", "edge-sched":
		if elem == 8 {
			fmt.Fprintln(os.Stderr, "the Fig 6 edge kernel pair is FP32")
			os.Exit(1)
		}
		sched := kernels.Batch
		if *kernel == "edge-sched" {
			sched = kernels.Pipelined
		}
		p = kernels.BuildEdge8x4(kernels.EdgeSpec{Elem: 4, KC: k, LDAp: 8, LDB: 4, LDC: 4, Schedule: sched})
	default:
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		os.Exit(1)
	}

	if !*noDis {
		fmt.Print(p.Disassemble())
		fmt.Println()
	}

	counts := p.Count()
	fmt.Printf("instructions: %d  (loads %d, stores %d, FMAs %d, other %d)\n",
		len(p.Code), counts.Loads, counts.Stores, counts.FMAs, counts.Other)
	fmt.Printf("flops: %d   CMR (arith/mem instructions): %.2f\n", p.FlopCount(), p.CMR())

	rep, err := isa.Analyze(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("peak live registers: %d / 32\n", rep.PeakLive)
	for _, s := range rep.Streams {
		fmt.Printf("stream %-3s loads %-4d stores %-4d extent [%d, %d)\n", s.Name, s.Loads, s.Stores, s.MinOff, s.MaxOff)
	}

	fmt.Println("\nscoreboard timing (whole program, operands L1-resident):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "platform\tcycles\tIPC\tFMA-pipe busy\tflops/cycle\tpeak flops/cycle")
	for _, plat := range platform.All() {
		r := uarch.Simulate(p, uarch.FromPlatform(plat))
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.0f%%\t%.2f\t%.0f\n",
			plat.Name, r.Cycles, r.IPC(), 100*r.FMAUtilization(),
			float64(p.FlopCount())/float64(r.Cycles), plat.FlopsPerCycleCore(elem))
	}
	tw.Flush()
}
