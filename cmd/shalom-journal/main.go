// Command shalom-journal is the forensics tool for the tamper-evident
// request journal (internal/journal): it verifies segment integrity by
// recomputing every merkle root and chain hash from the raw record bytes,
// lists segments with their anchor chain, and dumps decoded events for
// incident triage.
//
// Usage:
//
//	shalom-journal verify DIR            exit 0 iff the whole chain verifies
//	shalom-journal ls DIR                one line per segment
//	shalom-journal dump DIR              one line per event
//	    [-kind admit|result|flush|breaker|anchor]
//	    [-since RFC3339] [-until RFC3339] [-json]
//
// verify fails on any altered, inserted, dropped, or reordered byte — a
// flipped byte breaks its frame's CRC, and a frame rewritten with a
// recomputed CRC breaks the recomputed merkle chain. A torn tail also fails:
// it is crash damage (a writer reopen repairs it by truncation — re-verify
// after) or tampering, and verify cannot tell which. The newest segment may
// legitimately be unsealed (a live writer between anchors).
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"libshalom/internal/journal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "verify":
		os.Exit(cmdVerify(args))
	case "ls":
		os.Exit(cmdLs(args))
	case "dump":
		os.Exit(cmdDump(args))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "shalom-journal: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  shalom-journal verify DIR [-json]
  shalom-journal ls DIR
  shalom-journal dump DIR [-kind KIND] [-since RFC3339] [-until RFC3339] [-json]`)
}

// parseDir parses fs over args, accepting the single DIR positional either
// before or after the flags (stdlib flag parsing stops at the first
// positional, so `dump DIR -kind admit` needs DIR peeled off first).
func parseDir(fs *flag.FlagSet, args []string) (string, bool) {
	dir := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		dir, args = args[0], args[1:]
	}
	_ = fs.Parse(args)
	switch {
	case dir == "" && fs.NArg() == 1:
		return fs.Arg(0), true
	case dir != "" && fs.NArg() == 0:
		return dir, true
	}
	fmt.Fprintln(os.Stderr, "shalom-journal: exactly one journal directory expected")
	return "", false
}

func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the full verification report as JSON")
	dir, ok := parseDir(fs, args)
	if !ok {
		return 2
	}
	rep, err := journal.VerifyDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-journal:", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		for _, s := range rep.Segments {
			state := "sealed"
			if !s.Sealed {
				state = "open"
			}
			if s.Torn {
				state += ", torn tail"
			}
			fmt.Printf("segment %d: %d records, %d anchors, %d bytes (%s)\n",
				s.Index, s.Records, s.Anchors, s.Bytes, state)
		}
		fmt.Printf("chain head: %s\n", rep.ChainHead)
	}
	if !rep.OK {
		for _, e := range rep.Errs {
			fmt.Fprintln(os.Stderr, "shalom-journal: FAIL:", e)
		}
		return 1
	}
	fmt.Printf("shalom-journal: OK — %d records under %d anchors verify\n", rep.Records, rep.Anchors)
	return 0
}

func cmdLs(args []string) int {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir, ok := parseDir(fs, args)
	if !ok {
		return 2
	}
	rep, err := journal.VerifyDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-journal:", err)
		return 1
	}
	for _, s := range rep.Segments {
		span := ""
		if s.FirstT != 0 {
			span = fmt.Sprintf("  %s … %s",
				time.Unix(0, s.FirstT).UTC().Format(time.RFC3339),
				time.Unix(0, s.LastT).UTC().Format(time.RFC3339))
		}
		state := "sealed"
		if !s.Sealed {
			state = "open"
		}
		fmt.Printf("%s  seq %d-%d  %d records  %d anchors  %s  chain %.16s…%s\n",
			s.Path, s.FirstSeq, s.LastSeq, s.Records, s.Anchors, state, s.ChainHead, span)
	}
	if !rep.OK {
		for _, e := range rep.Errs {
			fmt.Fprintln(os.Stderr, "shalom-journal: WARN:", e)
		}
	}
	return 0
}

func cmdDump(args []string) int {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	kindFilter := fs.String("kind", "", "only events of this kind (admit, result, flush, breaker, anchor, segment-header)")
	since := fs.String("since", "", "only events at or after this RFC3339 time")
	until := fs.String("until", "", "only events before this RFC3339 time")
	asJSON := fs.Bool("json", false, "one JSON object per line instead of text")
	dir, ok := parseDir(fs, args)
	if !ok {
		return 2
	}
	var sinceNs, untilNs int64
	if *since != "" {
		t, err := time.Parse(time.RFC3339, *since)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-journal: -since:", err)
			return 2
		}
		sinceNs = t.UnixNano()
	}
	if *until != "" {
		t, err := time.Parse(time.RFC3339, *until)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-journal: -until:", err)
			return 2
		}
		untilNs = t.UnixNano()
	}
	events, err := journal.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-journal:", err)
		return 1
	}
	for _, e := range events {
		if *kindFilter != "" && e.Kind.String() != *kindFilter {
			continue
		}
		if sinceNs != 0 && e.T < sinceNs {
			continue
		}
		if untilNs != 0 && e.T >= untilNs {
			continue
		}
		if *asJSON {
			_ = json.NewEncoder(os.Stdout).Encode(dumpLine(e))
			continue
		}
		fmt.Println(textLine(e))
	}
	return 0
}

// dumpLine is the JSON dump shape of one event — the forensically useful
// fields per kind, hashes hex-encoded, payloads elided to their length.
func dumpLine(e journal.Event) map[string]any {
	m := map[string]any{
		"kind": e.Kind.String(),
		"seq":  e.Seq,
		"t":    time.Unix(0, e.T).UTC().Format(time.RFC3339Nano),
	}
	switch e.Kind {
	case journal.KindSegmentHeader:
		m["segment"] = e.Segment
		m["prev_chain"] = hex.EncodeToString(e.PrevChain[:])
	case journal.KindAdmit:
		m["header"] = json.RawMessage(e.Header)
		m["payload_hash"] = hex.EncodeToString(e.PayloadHash[:])
		m["payload_bytes"] = len(e.Payload)
		m["has_payload"] = e.HasPayload
	case journal.KindResult:
		m["admit_seq"] = e.AdmitSeq
		m["status"] = e.Status
		m["batch_size"] = e.BatchSize
		m["result_hash"] = hex.EncodeToString(e.ResultHash[:])
	case journal.KindFlush:
		m["class"] = e.Class
		m["size"] = e.Size
		m["flops"] = e.Flops
	case journal.KindBreaker:
		m["platform"] = e.Platform
		m["kernel"] = e.Kernel
		m["from"] = e.From
		m["to"] = e.To
		m["reason"] = e.Reason
		m["detail"] = e.Detail
		m["shape"] = e.Shape
		m["guard_seq"] = e.GuardSeq
		m["trips"] = e.Trips
	case journal.KindTunePromote, journal.KindTuneRevert:
		m["platform"] = e.Platform
		m["class"] = e.Class
		m["kernel"] = e.Kernel
		m["mr"] = e.MR
		m["nr"] = e.NR
		m["kc"] = e.KC
		if e.Kind == journal.KindTunePromote {
			m["gflops"] = e.GFLOPS
		} else {
			m["detail"] = e.Detail
		}
	case journal.KindAnchor:
		m["count"] = e.Count
		m["root"] = hex.EncodeToString(e.Root[:])
		m["chain"] = hex.EncodeToString(e.Chain[:])
		m["sealed"] = e.Sealed
	}
	return m
}

// textLine is the human dump shape of one event.
func textLine(e journal.Event) string {
	ts := time.Unix(0, e.T).UTC().Format("15:04:05.000000")
	switch e.Kind {
	case journal.KindSegmentHeader:
		return fmt.Sprintf("%s  #%d  segment-header  segment %d  prev-chain %.16s…",
			ts, e.Seq, e.Segment, hex.EncodeToString(e.PrevChain[:]))
	case journal.KindAdmit:
		captured := ""
		if e.HasPayload {
			captured = fmt.Sprintf("  payload %dB", len(e.Payload))
		}
		return fmt.Sprintf("%s  #%d  admit  %s  payload-hash %.16s…%s",
			ts, e.Seq, strings.TrimSpace(string(e.Header)), hex.EncodeToString(e.PayloadHash[:]), captured)
	case journal.KindResult:
		return fmt.Sprintf("%s  #%d  result  admit #%d  status %d  batch %d  result-hash %.16s…",
			ts, e.Seq, e.AdmitSeq, e.Status, e.BatchSize, hex.EncodeToString(e.ResultHash[:]))
	case journal.KindFlush:
		return fmt.Sprintf("%s  #%d  flush  %s  size %d  %.3g flops",
			ts, e.Seq, e.Class, e.Size, e.Flops)
	case journal.KindBreaker:
		return fmt.Sprintf("%s  #%d  breaker  %s/%s  %s → %s  (%s: %s)  trip %d",
			ts, e.Seq, e.Platform, e.Kernel, e.From, e.To, e.Reason, e.Detail, e.Trips)
	case journal.KindTunePromote:
		return fmt.Sprintf("%s  #%d  tune-promote  %s/%s  %s  tile %dx%d kc %d  %.1f GFLOPS",
			ts, e.Seq, e.Platform, e.Class, e.Kernel, e.MR, e.NR, e.KC, e.GFLOPS)
	case journal.KindTuneRevert:
		return fmt.Sprintf("%s  #%d  tune-revert  %s/%s  %s  tile %dx%d kc %d  (%s)",
			ts, e.Seq, e.Platform, e.Class, e.Kernel, e.MR, e.NR, e.KC, e.Detail)
	case journal.KindAnchor:
		sealed := ""
		if e.Sealed {
			sealed = "  SEALED"
		}
		return fmt.Sprintf("%s  #%d  anchor  %d records  chain %.16s…%s",
			ts, e.Seq, e.Count, hex.EncodeToString(e.Chain[:]), sealed)
	}
	return fmt.Sprintf("%s  #%d  %s", ts, e.Seq, e.Kind)
}
