// Command shalom-info prints the reproduction's analytic state: the Table 1
// platform models, the solved micro-kernel tiles (Eq. 1–2), the derived
// cache blocking parameters, example parallel partitions (§6), and the
// kernel health report (which kernel paths, if any, are demoted to the
// portable reference implementation).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"libshalom/internal/analytic"
	"libshalom/internal/bench"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	_ "libshalom/internal/kernels" // registers the micro-kernel catalogue
	"libshalom/internal/platform"
)

// printHealth runs contract verification and renders the self-healing view:
// the active policy, every circuit-breaker record with its state and trip
// count, and the trip history.
func printHealth(plats []*platform.Platform) {
	for _, p := range plats {
		guard.VerifyContracts(p)
	}
	heal.Snapshot().Write(os.Stdout)
}

// printDegraded runs the registration-time contract verification for each
// platform and reports any kernel paths demoted to the reference
// implementation. A healthy build prints "none".
func printDegraded(plats []*platform.Platform) {
	for _, p := range plats {
		guard.VerifyContracts(p)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seq\tplatform\tkernel path\treason\tfirst shape\tdetail")
	any := false
	for _, p := range plats {
		for _, d := range guard.List(p.Name) {
			any = true
			shape := d.Shape
			if shape == "" {
				shape = "-"
			}
			fmt.Fprintf(tw, "#%d\t%s\t%s\t%s\t%s\t%s\n", d.Seq, d.Platform, d.Kernel, d.Reason, shape, d.Detail)
		}
	}
	tw.Flush()
	if !any {
		fmt.Println("none: all registered kernels clear their isacheck contracts")
	}
}

func main() {
	table1 := flag.Bool("table1", false, "print only the Table 1 platform table")
	platName := flag.String("platform", "", "restrict the report to one platform (e.g. kp920, phytium2000, thunderx2)")
	degraded := flag.Bool("degraded", false, "print only the degraded-kernel report")
	health := flag.Bool("health", false, "print only the self-healing circuit-breaker report")
	flag.Parse()

	plats := platform.All()
	if *platName != "" {
		p := platform.ByName(*platName)
		if p == nil {
			fmt.Fprintf(os.Stderr, "shalom-info: unknown platform %q\n", *platName)
			os.Exit(2)
		}
		plats = []*platform.Platform{p}
	}

	if *table1 {
		bench.Table1(os.Stdout)
		return
	}
	if *degraded {
		printDegraded(plats)
		return
	}
	if *health {
		printHealth(plats)
		return
	}

	fmt.Println("== Table 1: evaluation platforms ==")
	bench.Table1(os.Stdout)

	fmt.Println("\n== Micro-kernel tiles from the register/CMR model (Eq. 1-2) ==")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "precision\tmr x nr\tCMR\tregisters used (budget 31)")
	for _, eb := range []int{4, 8} {
		t := analytic.SolveForElem(eb)
		name := "FP32"
		if eb == 8 {
			name = "FP64"
		}
		fmt.Fprintf(tw, "%s\t%dx%d\t%.2f\t%d\n", name, t.MR, t.NR, t.CMR, t.Regs)
	}
	tw.Flush()

	fmt.Println("\n== Cache blocking parameters (mc, kc, nc) ==")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "platform\tprecision\tmc\tkc\tnc")
	for _, p := range plats {
		for _, eb := range []int{4, 8} {
			b := analytic.BlockingFor(p, eb)
			name := "FP32"
			if eb == 8 {
				name = "FP64"
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\n", p.Name, name, b.MC, b.KC, b.NC)
		}
	}
	tw.Flush()

	fmt.Println("\n== SVE vector-length sweep of the tile solver (§5.5) ==")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vector bits\tFP32 tile\tFP32 CMR\tFP64 tile\tFP64 CMR")
	for _, e := range analytic.VectorSweep(4) {
		t64, err := analytic.SolveForVector(e.Bits, 8)
		if err != nil {
			continue
		}
		fmt.Fprintf(tw, "%d\t%dx%d\t%.2f\t%dx%d\t%.2f\n", e.Bits, e.Tile.MR, e.Tile.NR, e.Tile.CMR, t64.MR, t64.NR, t64.CMR)
	}
	tw.Flush()

	fmt.Println("\n== Parallel partitions Tn = ceil(sqrt(T*N/M)) (§6.1) ==")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "M\tN\tthreads\tTm x Tn")
	for _, c := range [][3]int{{2048, 256, 64}, {32, 10240, 64}, {64, 50176, 64}, {512, 196, 32}} {
		part := analytic.PartitionFor(c[0], c[1], c[2])
		fmt.Fprintf(tw, "%d\t%d\t%d\t%dx%d\n", c[0], c[1], c[2], part.TM, part.TN)
	}
	tw.Flush()

	fmt.Println("\n== Degraded kernels (fallback chain) ==")
	printDegraded(plats)
}
