// Command shalom-tune is the offline autotuner: a one-shot run of the
// search → prove pipeline for one (precision, shape class) key, optionally
// weighted by a captured journal workload, without touching any live
// dispatch table. It answers the operator question the online loop
// (shalom-serve -autotune) automates: "is there a tile worth canarying for
// this class on this platform, and by how much?"
//
// Usage:
//
//	shalom-tune -class small [-precision f32] [-platform kp920]
//	            [-margin 0.1] [-journal DIR] [-top 5] [-json]
//
// With -journal DIR the tool first replays the captured admit records to
// measure how hot the named class actually was — call count and flops
// share per (precision, class) — so the modeled uplift can be weighed
// against real traffic. The search space, scoring model, and proof gate
// are exactly the online loop's: every printed candidate is inside the
// symbolically proven generator-family domain, and the winner has passed
// the isacheck passes and vexec-vs-reference validation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"libshalom/internal/autotune"
	"libshalom/internal/journal"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// workloadKey aggregates admit records per (precision, class).
type workloadKey struct {
	precision string
	class     telemetry.ShapeClass
}

// workloadRow is one measured traffic share.
type workloadRow struct {
	Precision string  `json:"precision"`
	Class     string  `json:"class"`
	Calls     uint64  `json:"calls"`
	Flops     float64 `json:"flops"`
	CallShare float64 `json:"call_share"`
	FlopShare float64 `json:"flop_share"`
}

// admitHeader is the slice of the wire header the workload scan needs.
type admitHeader struct {
	Precision string `json:"precision"`
	M         int    `json:"m"`
	N         int    `json:"n"`
	K         int    `json:"k"`
}

// scanWorkload reads a journal directory's admit records into per-key
// traffic shares, sorted by flops share descending.
func scanWorkload(dir string) ([]workloadRow, error) {
	events, err := journal.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	agg := map[workloadKey]*workloadRow{}
	var totCalls uint64
	var totFlops float64
	for _, e := range events {
		if e.Kind != journal.KindAdmit {
			continue
		}
		var h admitHeader
		if err := json.Unmarshal(e.Header, &h); err != nil {
			continue
		}
		k := workloadKey{precision: h.Precision, class: telemetry.ClassifyShape(h.M, h.N, h.K)}
		r := agg[k]
		if r == nil {
			r = &workloadRow{Precision: k.precision, Class: k.class.String()}
			agg[k] = r
		}
		fl := 2 * float64(h.M) * float64(h.N) * float64(h.K)
		r.Calls++
		r.Flops += fl
		totCalls++
		totFlops += fl
	}
	var rows []workloadRow
	for _, r := range agg {
		if totCalls > 0 {
			r.CallShare = float64(r.Calls) / float64(totCalls)
		}
		if totFlops > 0 {
			r.FlopShare = r.Flops / totFlops
		}
		rows = append(rows, *r)
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].FlopShare > rows[i].FlopShare {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	return rows, nil
}

// report is the -json document.
type report struct {
	Platform   string               `json:"platform"`
	Precision  string               `json:"precision"`
	Class      string               `json:"class"`
	Margin     float64              `json:"margin"`
	Workload   []workloadRow        `json:"workload,omitempty"`
	Incumbent  autotune.Candidate   `json:"incumbent"`
	Candidates []autotune.Candidate `json:"candidates"`
	Winner     *autotune.Candidate  `json:"winner,omitempty"`
	UpliftPct  float64              `json:"uplift_pct,omitempty"`
	Verdict    string               `json:"verdict"`
}

func main() {
	className := flag.String("class", "", "shape class to tune (tiny, small, medium, large, irregular)")
	precision := flag.String("precision", "f32", "precision to tune (f32 or f64)")
	platName := flag.String("platform", "kp920", "platform model (kp920, phytium2000, thunderx2)")
	margin := flag.Float64("margin", 0.10, "modeled-throughput improvement a candidate must show over the incumbent")
	journalDir := flag.String("journal", "", "weigh the class against this captured journal workload")
	top := flag.Int("top", 5, "candidates to print")
	asJSON := flag.Bool("json", false, "emit the full report as JSON")
	flag.Parse()

	plat := platform.ByName(*platName)
	if plat == nil {
		fmt.Fprintf(os.Stderr, "shalom-tune: unknown platform %q\n", *platName)
		os.Exit(2)
	}
	var elem int
	switch *precision {
	case "f32":
		elem = 4
	case "f64":
		elem = 8
	default:
		fmt.Fprintf(os.Stderr, "shalom-tune: unknown precision %q\n", *precision)
		os.Exit(2)
	}
	var class telemetry.ShapeClass
	found := false
	for _, c := range telemetry.ShapeClasses() {
		if c.String() == *className && c != telemetry.ShapeEmpty {
			class, found = c, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "shalom-tune: -class must name a shape class (tiny, small, medium, large, irregular)\n")
		os.Exit(2)
	}

	rep := report{Platform: plat.Name, Precision: *precision, Class: *className, Margin: *margin}
	if *journalDir != "" {
		rows, err := scanWorkload(*journalDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-tune:", err)
			os.Exit(1)
		}
		rep.Workload = rows
	}

	sr := autotune.Search(plat, elem, class)
	rep.Incumbent = sr.Incumbent
	rep.Candidates = sr.Candidates
	if len(rep.Candidates) > *top {
		rep.Candidates = rep.Candidates[:*top]
	}

	floor := sr.Incumbent.GFLOPS * (1 + *margin)
	rep.Verdict = fmt.Sprintf("incumbent %s holds: no candidate models ≥ %.1f GFLOPS", sr.Incumbent.Kernel, floor)
	for _, c := range sr.Candidates {
		if c.GFLOPS < floor {
			break
		}
		if err := autotune.Prove(plat, elem, c); err != nil {
			fmt.Fprintf(os.Stderr, "shalom-tune: candidate %s failed the proof gate: %v\n", c.Kernel, err)
			continue
		}
		w := c
		rep.Winner = &w
		rep.UpliftPct = (c.GFLOPS/sr.Incumbent.GFLOPS - 1) * 100
		rep.Verdict = fmt.Sprintf("%s proved: %.1f GFLOPS modeled, +%.0f%% over %s",
			c.Kernel, c.GFLOPS, rep.UpliftPct, sr.Incumbent.Kernel)
		break
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
		return
	}
	if len(rep.Workload) > 0 {
		fmt.Printf("workload (%s):\n", *journalDir)
		for _, r := range rep.Workload {
			fmt.Printf("  %-4s %-10s %8d calls  %5.1f%% of calls  %5.1f%% of flops\n",
				r.Precision, r.Class, r.Calls, r.CallShare*100, r.FlopShare*100)
		}
	}
	fmt.Printf("class %s/%s on %s\n", *precision, *className, plat.Name)
	fmt.Printf("  incumbent  %-28s %7.1f GFLOPS (modeled)\n", rep.Incumbent.Kernel, rep.Incumbent.GFLOPS)
	for i, c := range rep.Candidates {
		fmt.Printf("  #%d         %-28s %7.1f GFLOPS (modeled)\n", i+1, c.Kernel, c.GFLOPS)
	}
	fmt.Printf("shalom-tune: %s\n", rep.Verdict)
	if rep.Winner == nil {
		os.Exit(1)
	}
}
