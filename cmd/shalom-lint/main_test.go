package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"libshalom/internal/isacheck"
)

func runLint(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestLintCleanCatalogue(t *testing.T) {
	code, out, errb := runLint()
	if code != 0 {
		t.Fatalf("catalogue should verify: code %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "0 failing") {
		t.Errorf("summary line missing:\n%s", out)
	}
	// The symbolic footprint pass must appear for every entry: 6/6 passes.
	if !strings.Contains(out, "6/6") {
		t.Errorf("expected 6/6 pass columns (symfoot wired in):\n%s", out)
	}
}

func TestLintJSON(t *testing.T) {
	code, out, _ := runLint("-json", "-kernel", "main-7x12")
	if code != 0 {
		t.Fatalf("code %d", code)
	}
	var results []isacheck.KernelResult
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("output is not the documented JSON: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("no results decoded")
	}
	var symfoot bool
	for _, p := range results[0].Passes {
		if p.Pass == "symfoot" {
			symfoot = true
		}
	}
	if !symfoot {
		t.Errorf("symfoot pass missing from %s", results[0].Kernel)
	}
}

func TestLintUsageErrors(t *testing.T) {
	if code, _, _ := runLint("-platform", "nosuch"); code != 2 {
		t.Errorf("unknown platform: code %d, want 2", code)
	}
	if code, _, _ := runLint("-kernel", "nosuchkernel"); code != 2 {
		t.Errorf("empty selection: code %d, want 2", code)
	}
	if code, _, _ := runLint("-nosuchflag"); code != 2 {
		t.Errorf("bad flag: code %d, want 2", code)
	}
}
