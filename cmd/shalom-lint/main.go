// shalom-lint runs the static kernel verifier (internal/isacheck) over every
// registered micro-kernel on every modelled platform and reports a verdict
// table. It is the build gate `make check` runs: a generator change that
// breaks a footprint, batches loads in a pipelined kernel, drifts from its
// Eq. 1 register tiling, or escapes its symbolic panel-span proof fails the
// build before any benchmark runs.
//
// Usage:
//
//	shalom-lint -all              verify every kernel on every platform
//	shalom-lint -kernel edge      verify kernels whose name contains "edge"
//	shalom-lint -platform KP920   restrict to one platform
//	shalom-lint -json             machine-readable results on stdout
//	shalom-lint -q                only print failures
//
// Exit codes: 0 clean, 1 findings, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	_ "libshalom/internal/baselines" // register baseline kernels
	"libshalom/internal/isacheck"
	_ "libshalom/internal/kernels" // register libshalom kernels
	"libshalom/internal/platform"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shalom-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	all := fs.Bool("all", false, "verify every registered kernel (default when no -kernel is given)")
	kernel := fs.String("kernel", "", "verify only kernels whose name contains this substring")
	plat := fs.String("platform", "", "restrict to the platform with this exact name")
	asJSON := fs.Bool("json", false, "emit results as JSON")
	quiet := fs.Bool("q", false, "only print failing (kernel, platform) pairs")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	plats := platform.All()
	if *plat != "" {
		p := platform.ByName(*plat)
		if p == nil {
			fmt.Fprintf(stderr, "shalom-lint: unknown platform %q\n", *plat)
			return 2
		}
		plats = []*platform.Platform{p}
	}

	entries := isacheck.Registered()
	if !*all && *kernel != "" {
		var sel []isacheck.Entry
		for _, e := range entries {
			if strings.Contains(e.Name, *kernel) {
				sel = append(sel, e)
			}
		}
		entries = sel
	}
	if len(entries) == 0 {
		fmt.Fprintln(stderr, "shalom-lint: no kernels selected")
		return 2
	}

	var results []isacheck.KernelResult
	for _, e := range entries {
		for _, p := range plats {
			results = append(results, isacheck.Run(e, p))
		}
	}
	ok, fail := isacheck.Summarize(results)

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(stderr, "shalom-lint: %v\n", err)
			return 2
		}
	} else {
		printTable(stdout, results, *quiet)
		fmt.Fprintf(stdout, "\n%d checked, %d ok, %d failing\n", len(results), ok, fail)
	}
	if fail > 0 {
		return 1
	}
	return 0
}

func printTable(stdout io.Writer, results []isacheck.KernelResult, quiet bool) {
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KERNEL\tPLATFORM\tVERDICT\tPASSES\tREGS\tMINDIST\tLOADRUN\tLOADPRESS")
	for _, r := range results {
		if quiet && r.OK {
			continue
		}
		verdict := "ok"
		if !r.OK {
			verdict = "FAIL"
		}
		var failed []string
		for _, p := range r.Passes {
			if !p.OK {
				failed = append(failed, p.Pass)
			}
		}
		passes := fmt.Sprintf("%d/%d", len(r.Passes)-len(failed), len(r.Passes))
		if len(failed) > 0 {
			passes += " (" + strings.Join(failed, ",") + ")"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.0f\t%.0f\t%.0f\t%.2f\n",
			r.Kernel, r.Platform, verdict, passes,
			r.Metrics["peakLive"], r.Metrics["minLoadUseDist"],
			r.Metrics["maxLoadRun"], r.Metrics["loadPressure"])
	}
	w.Flush()
	for _, r := range results {
		if r.OK {
			continue
		}
		fmt.Fprintf(stdout, "\n%s on %s:\n", r.Kernel, r.Platform)
		for _, f := range r.Findings() {
			fmt.Fprintf(stdout, "  %s\n", f)
		}
	}
}
