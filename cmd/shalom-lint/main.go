// shalom-lint runs the static kernel verifier (internal/isacheck) over every
// registered micro-kernel on every modelled platform and reports a verdict
// table. It is the build gate `make check` runs: a generator change that
// breaks a footprint, batches loads in a pipelined kernel, or drifts from its
// Eq. 1 register tiling fails the build before any benchmark runs.
//
// Usage:
//
//	shalom-lint -all              verify every kernel on every platform
//	shalom-lint -kernel edge      verify kernels whose name contains "edge"
//	shalom-lint -platform KP920   restrict to one platform
//	shalom-lint -json             machine-readable results on stdout
//	shalom-lint -q                only print failures
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	_ "libshalom/internal/baselines" // register baseline kernels
	"libshalom/internal/isacheck"
	_ "libshalom/internal/kernels" // register libshalom kernels
	"libshalom/internal/platform"
)

func main() {
	all := flag.Bool("all", false, "verify every registered kernel (default when no -kernel is given)")
	kernel := flag.String("kernel", "", "verify only kernels whose name contains this substring")
	plat := flag.String("platform", "", "restrict to the platform with this exact name")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	quiet := flag.Bool("q", false, "only print failing (kernel, platform) pairs")
	flag.Parse()

	plats := platform.All()
	if *plat != "" {
		p := platform.ByName(*plat)
		if p == nil {
			fmt.Fprintf(os.Stderr, "shalom-lint: unknown platform %q\n", *plat)
			os.Exit(2)
		}
		plats = []*platform.Platform{p}
	}

	entries := isacheck.Registered()
	if !*all && *kernel != "" {
		var sel []isacheck.Entry
		for _, e := range entries {
			if strings.Contains(e.Name, *kernel) {
				sel = append(sel, e)
			}
		}
		entries = sel
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "shalom-lint: no kernels selected")
		os.Exit(2)
	}

	var results []isacheck.KernelResult
	for _, e := range entries {
		for _, p := range plats {
			results = append(results, isacheck.Run(e, p))
		}
	}
	ok, fail := isacheck.Summarize(results)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "shalom-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		printTable(results, *quiet)
		fmt.Printf("\n%d checked, %d ok, %d failing\n", len(results), ok, fail)
	}
	if fail > 0 {
		os.Exit(1)
	}
}

func printTable(results []isacheck.KernelResult, quiet bool) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KERNEL\tPLATFORM\tVERDICT\tPASSES\tREGS\tMINDIST\tLOADRUN\tLOADPRESS")
	for _, r := range results {
		if quiet && r.OK {
			continue
		}
		verdict := "ok"
		if !r.OK {
			verdict = "FAIL"
		}
		var failed []string
		for _, p := range r.Passes {
			if !p.OK {
				failed = append(failed, p.Pass)
			}
		}
		passes := fmt.Sprintf("%d/%d", len(r.Passes)-len(failed), len(r.Passes))
		if len(failed) > 0 {
			passes += " (" + strings.Join(failed, ",") + ")"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.0f\t%.0f\t%.0f\t%.2f\n",
			r.Kernel, r.Platform, verdict, passes,
			r.Metrics["peakLive"], r.Metrics["minLoadUseDist"],
			r.Metrics["maxLoadRun"], r.Metrics["loadPressure"])
	}
	w.Flush()
	for _, r := range results {
		if r.OK {
			continue
		}
		fmt.Printf("\n%s on %s:\n", r.Kernel, r.Platform)
		for _, f := range r.Findings() {
			fmt.Printf("  %s\n", f)
		}
	}
}
