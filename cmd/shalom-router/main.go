// Command shalom-router runs the fault-tolerant sharded router tier: an
// HTTP front door that shards GEMM requests across N shalom-serve backends
// by shape class (rendezvous hashing on the (precision, mode, class) key,
// so each backend's coalescer sees a denser stream of its classes), routes
// around unhealthy or draining nodes, hedges failed and slow attempts onto
// the next-preferred backend under a per-request retry budget, and drains
// gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	shalom-router -backends URL[,URL...]
//	              [-addr 127.0.0.1:9090] [-addr-file FILE]
//	              [-probe-interval 250ms] [-probe-timeout 1s]
//	              [-eject-threshold 3] [-readmit-base 500ms]
//	              [-retry-budget 2] [-hedge-delay 0]
//	              [-default-timeout 0] [-retry-after 1] [-retry-jitter 1]
//	              [-drain-timeout 30s]
//
// Health flows from two sources: periodic GET /readyz probes against every
// backend, and passive outcome tracking on the forward path. A backend that
// answers -eject-threshold consecutive 5xx/connect failures is ejected from
// rotation and readmitted only after a successful probe, with exponential
// backoff between probe attempts (-readmit-base doubling per trip). A
// backend whose readiness answers 503 is draining: routed around without
// penalty and readmitted the moment its readiness recovers.
//
// The router serves GET /healthz (fleet table + config hash), /readyz (its
// own drain state), and — always — /metrics, /snapshot and /trace with the
// router telemetry families and per-backend series.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"libshalom/internal/router"
	"libshalom/internal/telemetry"
)

func main() {
	backends := flag.String("backends", "", "comma-separated shalom-serve base URLs (required)")
	addr := flag.String("addr", "127.0.0.1:9090", "listen address (port 0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "active readiness-probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe timeout")
	ejectThreshold := flag.Int("eject-threshold", 3, "consecutive failures that eject a backend")
	readmitBase := flag.Duration("readmit-base", 500*time.Millisecond, "first readmission cooldown (doubles per trip)")
	retryBudget := flag.Int("retry-budget", 2, "additional backends a request may be retried onto")
	hedgeDelay := flag.Duration("hedge-delay", 0, "launch a concurrent hedge attempt after this delay (0 = off)")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline for requests that carry none (0 = unbounded)")
	retryAfter := flag.Int("retry-after", 1, "base Retry-After hint on shed responses, seconds")
	retryJitter := flag.Int("retry-jitter", 1, "uniform jitter added to Retry-After, seconds (negative = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may take")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "shalom-router: -backends is required (comma-separated shalom-serve URLs)")
		os.Exit(2)
	}

	// The lifecycle context parents the prober and every forward attempt.
	// Like shalom-serve's, it is not the signal context: a drain still has
	// in-flight forwards to finish, so it cancels only at process exit.
	lifecycle, stop := context.WithCancel(context.Background())
	defer stop()

	tel := telemetry.New(telemetry.Options{})
	rt, err := router.New(router.Config{
		Backends:         urls,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		EjectThreshold:   *ejectThreshold,
		ReadmitBase:      *readmitBase,
		RetryBudget:      *retryBudget,
		HedgeDelay:       *hedgeDelay,
		DefaultTimeout:   *defaultTimeout,
		RetryAfter:       *retryAfter,
		RetryAfterJitter: *retryJitter,
		BaseContext:      lifecycle,
		Telemetry:        tel,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-router:", err)
		os.Exit(2)
	}
	rt.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-router:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "shalom-router:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("shalom-router: listening on %s, sharding over %d backends (eject after %d, retry budget %d)\n",
		bound, len(urls), *ejectThreshold, *retryBudget)

	httpSrv := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("shalom-router: %v — draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "shalom-router:", err)
		os.Exit(1)
	}

	// Rolling drain: readiness goes 503 immediately (an upstream balancer
	// stops sending), every in-flight forward is answered, then the
	// listener closes.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shalom-router: drain:", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shalom-router: shutdown:", err)
		os.Exit(1)
	}
	rt.Close()

	s := tel.Snapshot().Router
	fmt.Printf("shalom-router: drained — forwarded %d, attempts %d, retries %d, hedges %d, shed %d, errors %d, ejections %d, readmissions %d\n",
		s.Forwarded, s.Attempts, s.Retries, s.Hedges, s.Shed, s.Errors, s.Ejections, s.Readmissions)
}
