// Command shalom-load is the closed-loop load generator for shalom-serve:
// it replays internal/workloads shape mixes against the serving front end
// from -c concurrent connections and reports achieved GFLOPS, p50/p99
// latency, shed rate and the observed coalescing (mean batch size, fraction
// of requests that shared a flush) — the repo's first end-to-end throughput
// benchmark.
//
// Usage:
//
//	shalom-load -addr http://127.0.0.1:8080[,URL...] [-n 1024] [-c 16]
//	            [-mix tiny|small|cp2k|mixed] [-timeout-ms 0]
//	            [-router] [-shed-retries 1]
//	            [-json FILE] [-assert-coalesced] [-fail-on-shed]
//	            [-replay DIR] [-replay-speed 1]
//
// -addr accepts a comma-separated target list: workers spray requests
// round-robin over all of them (naive multi-node load, the baseline the
// router's class-affine sharding is measured against). -router declares the
// single target a shalom-router: provenance and counters are scraped from
// the router's own /healthz and /metrics, per-request attempt counts are
// aggregated off X-Shalom-Attempts, and -assert-coalesced is skipped (the
// coalesce counter lives on the backends, not the router).
//
// Shed responses (429, or 503 carrying Retry-After) are retried up to
// -shed-retries times, honoring the server's jittered Retry-After hint
// instead of re-issuing immediately — the client half of the retry-storm
// fix. A request counts as shed only when its retries are exhausted.
//
// -assert-coalesced scrapes /metrics after the run and fails unless the
// server's coalesce counter moved — the check `make serve-smoke` gates on.
//
// -replay DIR switches to deterministic replay: the journal in DIR
// (captured with `shalom-serve -journal DIR -journal-payloads`) is verified
// and re-issued with original arrival spacing (scaled by -replay-speed;
// 0 = flat out), asserting bitwise-identical results for every request the
// original run completed. Reports — both modes — embed the serve target's
// config hash and journal head from /healthz, so every artifact names the
// exact configuration and traffic segment it measured.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"libshalom/internal/mat"
	"libshalom/internal/server"
	"libshalom/internal/workloads"
)

// job is one pre-encoded request the workers replay.
type job struct {
	name  string
	body  []byte
	m, n  int
	f64   bool
	flops float64
}

// report is the machine-readable result (-json writes it verbatim).
type report struct {
	Addr        string `json:"addr"`
	Mix         string `json:"mix"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	// Nodes is the serving node count this row measured: the backend fleet
	// size behind the router (scraped from its /healthz), or the number of
	// -addr targets — the x-axis of the node-count scaling curve.
	Nodes  int  `json:"nodes"`
	Router bool `json:"router,omitempty"`

	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// Retried counts shed re-issues that honored a Retry-After hint;
	// Hedged counts answered requests that needed more than one backend
	// attempt (router mode, off X-Shalom-Attempts).
	Retried int `json:"retried,omitempty"`
	Hedged  int `json:"hedged,omitempty"`

	WallSeconds  float64 `json:"wall_seconds"`
	GFLOPS       float64 `json:"gflops"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	MeanBatch    float64 `json:"mean_batch_size"`
	CoalescedPct float64 `json:"coalesced_pct"`
	ShedPct      float64 `json:"shed_pct"`

	// Provenance, scraped from the target's /healthz after the run: the
	// serving configuration's hash and — when the target journals — the
	// journal head this run's traffic landed under. A BENCH_serve.json row
	// is thereby attributable to an exact config and traffic segment.
	ConfigHash       string `json:"config_hash,omitempty"`
	JournalChainHead string `json:"journal_chain_head,omitempty"`
	JournalSegment   uint64 `json:"journal_segment,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL, or a comma-separated list for naive multi-target spraying")
	n := flag.Int("n", 1024, "total requests to issue")
	c := flag.Int("c", 16, "concurrent closed-loop workers")
	mix := flag.String("mix", "tiny", "workload mix: tiny, small, cp2k, or mixed")
	timeoutMS := flag.Int("timeout-ms", 0, "per-request deadline in ms (0 = server default)")
	routerMode := flag.Bool("router", false, "the target is a shalom-router: scrape its fleet provenance and count hedged attempts")
	shedRetries := flag.Int("shed-retries", 1, "re-issues after a shed response, honoring its Retry-After hint (0 = give up immediately)")
	jsonPath := flag.String("json", "", "write the report as JSON to this file")
	assertCoalesced := flag.Bool("assert-coalesced", false, "scrape /metrics after the run and fail unless the coalesce counter > 0 (skipped in -router mode)")
	failOnShed := flag.Bool("fail-on-shed", false, "exit non-zero if any request was shed or errored")
	replayDir := flag.String("replay", "", "replay a captured journal directory instead of generating load")
	replaySpeed := flag.Float64("replay-speed", 1, "replay pacing: 1 = original arrival spacing, 2 = twice as fast, 0 = flat out")
	flag.Parse()

	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		a = strings.TrimSuffix(strings.TrimSpace(a), "/")
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		targets = append(targets, a)
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "shalom-load: -addr names no targets")
		os.Exit(2)
	}
	base := targets[0]
	if *routerMode && len(targets) > 1 {
		fmt.Fprintln(os.Stderr, "shalom-load: -router takes a single router target")
		os.Exit(2)
	}
	if *replayDir != "" {
		os.Exit(runReplay(base, *replayDir, *replaySpeed, *jsonPath))
	}
	jobs, err := buildJobs(*mix, *timeoutMS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-load:", err)
		os.Exit(2)
	}

	var (
		issued    atomic.Int64
		okCount   atomic.Int64
		shedCount atomic.Int64
		errCount  atomic.Int64
		retried   atomic.Int64
		hedged    atomic.Int64
		flopsOK   atomic.Int64
		batchSum  atomic.Int64
		coalesced atomic.Int64
		latMu     sync.Mutex
		lats      []time.Duration
	)
	client := &http.Client{}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(issued.Add(1)) - 1
				if i >= *n {
					return
				}
				j := jobs[i%len(jobs)]
				target := targets[i%len(targets)]
				t0 := time.Now()
				attempts := 0
			issue:
				resp, err := client.Post(target+"/v1/gemm", "application/octet-stream", bytes.NewReader(j.body))
				if err != nil {
					errCount.Add(1)
					fmt.Fprintln(os.Stderr, "shalom-load:", err)
					continue
				}
				shedClass := resp.StatusCode == http.StatusTooManyRequests ||
					(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "")
				switch {
				case resp.StatusCode == http.StatusOK:
					rh, _, _, err := server.DecodeResponse(resp.Body, j.m, j.n, j.f64)
					resp.Body.Close()
					if err != nil {
						errCount.Add(1)
						continue
					}
					okCount.Add(1)
					flopsOK.Add(int64(j.flops))
					batchSum.Add(int64(rh.BatchSize))
					if rh.BatchSize > 1 {
						coalesced.Add(1)
					}
					if a, _ := strconv.Atoi(resp.Header.Get("X-Shalom-Attempts")); a > 1 {
						hedged.Add(1)
					}
					lat := time.Since(t0)
					latMu.Lock()
					lats = append(lats, lat)
					latMu.Unlock()
				case shedClass:
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					// Honor the server's jittered Retry-After instead of
					// re-issuing immediately — re-arriving in one synchronized
					// wave is how a shed storm feeds itself.
					if attempts < *shedRetries {
						attempts++
						retried.Add(1)
						if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
							if sec > 5 {
								sec = 5 // keep pathological hints from stalling the run
							}
							time.Sleep(time.Duration(sec) * time.Second)
						}
						goto issue
					}
					shedCount.Add(1)
				default:
					body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
					resp.Body.Close()
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "shalom-load: HTTP %d: %s\n", resp.StatusCode, strings.TrimSpace(string(body)))
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	r := report{
		Addr: strings.Join(targets, ","), Mix: *mix, Requests: *n, Concurrency: *c,
		Nodes: len(targets), Router: *routerMode,
		OK: int(okCount.Load()), Shed: int(shedCount.Load()), Errors: int(errCount.Load()),
		Retried: int(retried.Load()), Hedged: int(hedged.Load()),
		WallSeconds: wall.Seconds(),
	}
	if wall > 0 {
		r.GFLOPS = float64(flopsOK.Load()) / wall.Seconds() / 1e9
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		r.P50MS = float64(lats[len(lats)/2].Microseconds()) / 1e3
		r.P99MS = float64(lats[len(lats)*99/100].Microseconds()) / 1e3
		r.MeanBatch = float64(batchSum.Load()) / float64(len(lats))
		r.CoalescedPct = 100 * float64(coalesced.Load()) / float64(len(lats))
	}
	if *n > 0 {
		r.ShedPct = 100 * float64(r.Shed) / float64(*n)
	}
	if prov, err := scrapeProvenance(client, base); err == nil {
		r.ConfigHash = prov.ConfigHash
		if prov.Journal != nil {
			r.JournalChainHead = prov.Journal.ChainHead
			r.JournalSegment = prov.Journal.Segment
		}
		// Behind a router the node count is the fleet size, not the target
		// count: /healthz reports the backend table.
		if *routerMode && len(prov.Backends) > 0 {
			r.Nodes = len(prov.Backends)
		}
	} else {
		fmt.Fprintln(os.Stderr, "shalom-load: provenance scrape:", err)
	}

	nodes := fmt.Sprintf("%d nodes", r.Nodes)
	if r.Nodes == 1 {
		nodes = "1 node"
	}
	fmt.Printf("shalom-load: %d requests (%s mix, %d workers, %s) in %v\n", *n, *mix, *c, nodes, wall.Round(time.Millisecond))
	fmt.Printf("  ok %d, shed %d (%.1f%%), errors %d, retried %d, hedged %d\n", r.OK, r.Shed, r.ShedPct, r.Errors, r.Retried, r.Hedged)
	fmt.Printf("  throughput %.3f GFLOPS, latency p50 %.3fms p99 %.3fms\n", r.GFLOPS, r.P50MS, r.P99MS)
	fmt.Printf("  coalescing: mean batch size %.1f, %.1f%% of requests shared a flush\n", r.MeanBatch, r.CoalescedPct)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-load:", err)
			os.Exit(1)
		}
		fmt.Printf("  report written to %s\n", *jsonPath)
	}

	exit := 0
	if *assertCoalesced && *routerMode {
		fmt.Println("  -assert-coalesced skipped: the coalesce counter lives on the backends, not the router")
	} else if *assertCoalesced {
		count, err := scrapeCoalesced(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-load: metrics scrape:", err)
			exit = 1
		} else {
			fmt.Printf("  /metrics: libshalom_server_coalesced_requests_total = %d\n", count)
			if count == 0 {
				fmt.Fprintln(os.Stderr, "shalom-load: FAIL: no coalescing observed (counter is zero)")
				exit = 1
			}
		}
	}
	if *failOnShed && (r.Shed > 0 || r.Errors > 0) {
		fmt.Fprintf(os.Stderr, "shalom-load: FAIL: %d shed, %d errors\n", r.Shed, r.Errors)
		exit = 1
	}
	if r.Errors > 0 && r.OK == 0 {
		exit = 1
	}
	os.Exit(exit)
}

// buildJobs pre-encodes the request bodies of the chosen mix, so workers
// replay bytes instead of re-marshalling per request.
func buildJobs(mix string, timeoutMS int) ([]job, error) {
	var f32Shapes, f64Shapes []workloads.Shape
	switch mix {
	case "tiny":
		// The §7.2 small-GEMM regime's lower edge: the sizes where per-call
		// overhead dominates hardest and coalescing pays most.
		f32Shapes = []workloads.Shape{
			{M: 8, N: 8, K: 8}, {M: 16, N: 16, K: 16}, {M: 12, N: 12, K: 12},
		}
	case "small":
		f32Shapes = workloads.SmallSquareSweep()
	case "cp2k":
		f64Shapes = workloads.CP2K()
	case "mixed":
		f32Shapes = workloads.SmallSquareSweep()[:8]
		f64Shapes = workloads.CP2K()
	default:
		return nil, fmt.Errorf("unknown -mix %q (want tiny, small, cp2k, or mixed)", mix)
	}
	rng := mat.NewRNG(1)
	var jobs []job
	add := func(s workloads.Shape, f64 bool) error {
		prec := "f32"
		if f64 {
			prec = "f64"
		}
		h := server.Header{
			Precision: prec, Mode: "NN",
			M: s.M, N: s.N, K: s.K,
			Alpha: 1, Beta: 0, TimeoutMS: timeoutMS,
		}
		var buf bytes.Buffer
		var err error
		if f64 {
			a := mat.RandomF64(s.M, s.K, rng).Data
			b := mat.RandomF64(s.K, s.N, rng).Data
			err = server.EncodeRequest(&buf, h, nil, nil, nil, a, b, nil)
		} else {
			a := mat.RandomF32(s.M, s.K, rng).Data
			b := mat.RandomF32(s.K, s.N, rng).Data
			err = server.EncodeRequest(&buf, h, a, b, nil, nil, nil, nil)
		}
		if err != nil {
			return err
		}
		jobs = append(jobs, job{
			name: s.String(), body: buf.Bytes(),
			m: s.M, n: s.N, f64: f64, flops: s.Flops(),
		})
		return nil
	}
	for _, s := range f32Shapes {
		if err := add(s, false); err != nil {
			return nil, err
		}
	}
	for _, s := range f64Shapes {
		if err := add(s, true); err != nil {
			return nil, err
		}
	}
	return jobs, nil
}

var coalescedRE = regexp.MustCompile(`(?m)^libshalom_server_coalesced_requests_total\s+(\d+)$`)

// scrapeCoalesced reads the server's coalesce counter off /metrics.
func scrapeCoalesced(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, err
	}
	m := coalescedRE.FindSubmatch(body)
	if m == nil {
		return 0, fmt.Errorf("libshalom_server_coalesced_requests_total not found in /metrics (no flush with batch size > 1 yet)")
	}
	return strconv.ParseUint(string(m[1]), 10, 64)
}
