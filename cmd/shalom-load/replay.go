package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"libshalom/internal/journal"
	"libshalom/internal/server"
)

// Deterministic replay: re-issue a journaled traffic segment against a live
// shalom-serve and assert bitwise-identical results. Each admit record
// carries the request's canonical wire bytes (requires -journal-payloads on
// the capturing server) and its arrival time; replay re-issues them with
// the original spacing (scaled by -replay-speed) and compares the SHA-256
// of each response payload against the journaled result hash. Requests
// whose journaled status was not 200 are re-issued for traffic fidelity but
// not hash-compared — a deadline expiry is timing, not arithmetic.

// replayItem is one journaled request scheduled for re-issue.
type replayItem struct {
	seq    uint64
	at     time.Duration // offset from the first admit
	body   []byte
	m, n   int
	f64    bool
	status int32 // journaled terminal status
	hash   [32]byte
}

// loadReplay reads the journal and builds the replay schedule.
func loadReplay(dir string) ([]replayItem, error) {
	events, err := journal.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	results := make(map[uint64]journal.Event)
	for _, e := range events {
		if e.Kind == journal.KindResult {
			results[e.AdmitSeq] = e
		}
	}
	var items []replayItem
	var t0 int64
	for _, e := range events {
		if e.Kind != journal.KindAdmit {
			continue
		}
		if !e.HasPayload {
			return nil, fmt.Errorf("admit seq %d has no captured payload — capture with `shalom-serve -journal-payloads` to replay", e.Seq)
		}
		var h server.Header
		if err := json.Unmarshal(e.Header, &h); err != nil {
			return nil, fmt.Errorf("admit seq %d: malformed journaled header: %w", e.Seq, err)
		}
		if t0 == 0 {
			t0 = e.T
		}
		body := make([]byte, 0, len(e.Header)+1+len(e.Payload))
		body = append(body, e.Header...)
		body = append(body, '\n')
		body = append(body, e.Payload...)
		it := replayItem{
			seq: e.Seq, at: time.Duration(e.T - t0),
			body: body, m: h.M, n: h.N, f64: h.Precision == "f64",
		}
		if r, ok := results[e.Seq]; ok {
			it.status = r.Status
			it.hash = r.ResultHash
		}
		items = append(items, it)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("journal %s holds no admit records", dir)
	}
	return items, nil
}

// runReplay is the -replay entry point. Returns the process exit code.
func runReplay(base, dir string, speed float64, jsonPath string) int {
	items, err := loadReplay(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-load: replay:", err)
		return 1
	}
	rep, err := journal.VerifyDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shalom-load: replay:", err)
		return 1
	}
	if !rep.OK {
		fmt.Fprintf(os.Stderr, "shalom-load: replay: journal fails verification: %s\n", strings.Join(rep.Errs, "; "))
		return 1
	}
	fmt.Printf("shalom-load: replaying %d journaled requests from %s (chain head %.16s…, speed %.2gx)\n",
		len(items), dir, rep.ChainHead, speed)

	client := &http.Client{}
	start := time.Now()
	var matched, mismatched, skipped, errors int
	for _, it := range items {
		if speed > 0 {
			due := time.Duration(float64(it.at) / speed)
			if wait := due - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		}
		resp, err := client.Post(base+"/v1/gemm", "application/octet-stream", bytes.NewReader(it.body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-load: replay:", err)
			errors++
			continue
		}
		if it.status != http.StatusOK {
			// The original never completed (shed mid-journal, expired, 5xx);
			// drain the replayed answer without judging it.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			skipped++
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "shalom-load: replay seq %d: original completed, replay got HTTP %d: %s\n",
				it.seq, resp.StatusCode, strings.TrimSpace(string(body)))
			mismatched++
			continue
		}
		_, c32, c64, err := server.DecodeResponse(resp.Body, it.m, it.n, it.f64)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "shalom-load: replay seq %d: %v\n", it.seq, err)
			errors++
			continue
		}
		var got [32]byte
		if it.f64 {
			got = journal.HashF64s(c64)
		} else {
			got = journal.HashF32s(c32)
		}
		if got != it.hash {
			fmt.Fprintf(os.Stderr, "shalom-load: replay seq %d: result hash %s, journaled %s — results are NOT bitwise identical\n",
				it.seq, hex.EncodeToString(got[:8]), hex.EncodeToString(it.hash[:8]))
			mismatched++
			continue
		}
		matched++
	}
	wall := time.Since(start)
	fmt.Printf("shalom-load: replay done in %v — %d bitwise-identical, %d mismatched, %d skipped (non-200 originals), %d errors\n",
		wall.Round(time.Millisecond), matched, mismatched, skipped, errors)

	if jsonPath != "" {
		r := replayReport{
			Addr: base, ReplaySource: dir, ChainHead: rep.ChainHead,
			Requests: len(items), Matched: matched, Mismatched: mismatched,
			Skipped: skipped, Errors: errors, WallSeconds: wall.Seconds(),
		}
		if prov, err := scrapeProvenance(client, base); err == nil {
			r.ConfigHash = prov.ConfigHash
			if prov.Journal != nil {
				r.ServeChainHead = prov.Journal.ChainHead
				r.ServeSegment = prov.Journal.Segment
			}
		}
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "shalom-load:", err)
			return 1
		}
		fmt.Printf("  report written to %s\n", jsonPath)
	}
	if mismatched > 0 || errors > 0 {
		fmt.Fprintf(os.Stderr, "shalom-load: FAIL: replay diverged (%d mismatched, %d errors)\n", mismatched, errors)
		return 1
	}
	return 0
}

// replayReport is the -replay run's machine-readable result.
type replayReport struct {
	Addr         string `json:"addr"`
	ReplaySource string `json:"replay_source"`
	// ChainHead is the replayed journal's verified chain head — the exact
	// traffic segment this run reproduced.
	ChainHead   string  `json:"replay_chain_head"`
	Requests    int     `json:"requests"`
	Matched     int     `json:"matched"`
	Mismatched  int     `json:"mismatched"`
	Skipped     int     `json:"skipped"`
	Errors      int     `json:"errors"`
	WallSeconds float64 `json:"wall_seconds"`
	// Provenance of the serve target, from /healthz.
	ConfigHash     string `json:"config_hash,omitempty"`
	ServeChainHead string `json:"serve_journal_chain_head,omitempty"`
	ServeSegment   uint64 `json:"serve_journal_segment,omitempty"`
}

// provenance is the slice of /healthz the load generator embeds in its
// artifacts: which configuration answered, and — when the target journals —
// which journal head its traffic landed under.
type provenance struct {
	ConfigHash string          `json:"config_hash"`
	Journal    *journal.Status `json:"journal"`
	// Backends is present when the target is a shalom-router: its /healthz
	// fleet table, whose length is the serving node count.
	Backends []json.RawMessage `json:"backends"`
}

// scrapeProvenance reads the target's config hash and journal head off
// /healthz (any status — a degraded target still reports provenance).
func scrapeProvenance(client *http.Client, base string) (provenance, error) {
	var p provenance
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(body, &p); err != nil {
		return p, fmt.Errorf("malformed /healthz body: %w", err)
	}
	return p, nil
}
