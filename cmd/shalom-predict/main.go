// Command shalom-predict explains one GEMM call: the execution plan
// LibShalom's driver will follow (packing decision, blocking, partition)
// and the calibrated performance model's prediction for every library on a
// chosen platform, with the per-component time breakdown.
//
// Usage:
//
//	shalom-predict -m 64 -n 50176 -k 576 -mode NT -threads 64 -platform kp920
//	shalom-predict -m 8 -n 8 -k 8 -fp64 -warm
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"libshalom/internal/baselines"
	"libshalom/internal/core"
	"libshalom/internal/perfsim"
	"libshalom/internal/platform"
)

func main() {
	m := flag.Int("m", 64, "rows of C")
	n := flag.Int("n", 64, "columns of C")
	k := flag.Int("k", 64, "inner dimension")
	modeStr := flag.String("mode", "NN", "NN | NT | TN | TT")
	threads := flag.Int("threads", 1, "thread count (0 = all platform cores)")
	platName := flag.String("platform", "kp920", "phytium | kp920 | tx2")
	fp64 := flag.Bool("fp64", false, "double precision")
	warm := flag.Bool("warm", false, "warm-cache methodology (Fig 7)")
	flag.Parse()

	mode, err := core.ParseMode(*modeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plat := platform.ByName(*platName)
	if plat == nil {
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platName)
		os.Exit(1)
	}
	if *threads == 0 {
		*threads = plat.Cores
	}
	elem := 4
	if *fp64 {
		elem = 8
	}

	fmt.Printf("== execution plan (LibShalom driver, %s) ==\n", plat.Name)
	fmt.Print(core.PlanFor(core.Config{Plat: plat, Threads: *threads}, mode, *m, *n, *k, elem).String())

	w := perfsim.Workload{M: *m, N: *n, K: *k, ElemBytes: elem, TransB: mode.TransB(), Threads: *threads, Warm: *warm}
	fmt.Printf("\n== modeled performance (%dx%dx%d %s, %d thread(s), elem %dB) ==\n", *m, *n, *k, mode, *threads, elem)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "library\tGFLOPS\ttime\tactive threads")
	libs := []perfsim.Library{
		perfsim.LibShalom(),
		perfsim.Baseline(baselines.BLIS), perfsim.Baseline(baselines.OpenBLAS),
		perfsim.Baseline(baselines.ARMPL), perfsim.Baseline(baselines.LIBXSMM),
		perfsim.Baseline(baselines.BLASFEO),
	}
	for _, l := range libs {
		r := perfsim.Run(l, plat, w)
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%d\n", l.Name, r.GFLOPS, fmtDur(r.Seconds), r.ActiveThreads)
	}
	tw.Flush()

	ls := perfsim.Run(perfsim.LibShalom(), plat, w)
	fmt.Println("\n== LibShalom time breakdown ==")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	keys := make([]string, 0, len(ls.Components))
	for key := range ls.Components {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		v := ls.Components[key]
		if v <= 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f%%\n", key, fmtDur(v), 100*v/ls.Seconds)
	}
	tw.Flush()
}

func fmtDur(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2f s", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2f ms", sec*1e3)
	case sec >= 1e-6:
		return fmt.Sprintf("%.2f µs", sec*1e6)
	default:
		return fmt.Sprintf("%.0f ns", sec*1e9)
	}
}
