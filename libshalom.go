// Package libshalom is a Go reproduction of LibShalom — "Optimizing Small
// and Irregular-Shaped Matrix Multiplications on ARMv8 Multi-Cores"
// (Yang, Fang, Dong, Su, Wang; SC '21) — as a complete, documented library.
//
// The package exposes:
//
//   - SGEMM/DGEMM: LibShalom's GEMM (all four NN/NT/TN/TT modes, α/β
//     scalars, row-major operands with explicit leading dimensions),
//     implementing the paper's driver: runtime packing decisions (§4),
//     micro-kernel-level packing overlapped with computation (§5.3), the
//     analytically derived 7×12 / 7×6 micro-kernel tiles (§5.2), and the
//     shape-aware two-level parallel partition Tn = ⌈√(T·N/M)⌉ (§6).
//   - A Context for configuring the platform model and thread count, with
//     an automatic small-vs-irregular threading policy matching §7.4.
//   - Analytic queries (MicroKernelTile, Blocking, Partition) exposing the
//     paper's models.
//   - Predict, the performance model used to regenerate the paper's
//     figures on the three simulated ARMv8 platforms (see DESIGN.md for
//     the simulation substitution).
//
// Matrices are row-major; element (i, j) of an r×c operand with leading
// dimension ld lives at data[i*ld + j]. Transposed operands (the T modes)
// are supplied as stored: a TransA operand is the K×M row-major storage of
// the logical M×K matrix A.
package libshalom

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"libshalom/internal/analytic"
	"libshalom/internal/baselines"
	"libshalom/internal/core"
	"libshalom/internal/parallel"
	"libshalom/internal/perfsim"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
	"libshalom/internal/tuner"
)

// Mode selects the GEMM transposition mode; see core.Mode.
type Mode = core.Mode

// GEMM transposition modes, following BLAS naming (§3.3 of the paper).
const (
	NN = core.NN
	NT = core.NT
	TN = core.TN
	TT = core.TT
)

// ParseMode converts "NN"/"NT"/"TN"/"TT" into a Mode.
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// Platform is a processor model; the library's packing decisions and
// blocking parameters derive from its cache hierarchy.
type Platform = platform.Platform

// The three evaluation platforms of the paper (Table 1), plus the SVE-512
// A64FX that §5.5 names as a porting target.
var (
	Phytium2000 = platform.Phytium2000
	KP920       = platform.KP920
	ThunderX2   = platform.ThunderX2
	A64FX       = platform.A64FX
)

// Context carries the configuration of GEMM calls. The zero value is NOT
// ready to use; call New. A Context is safe for concurrent use: GEMM calls
// from multiple goroutines share its worker pool.
type Context struct {
	plat       *Platform
	threads    int // 0 = automatic policy
	guard      bool
	aliasCheck bool
	deadline   time.Duration
	retry      bool
	tel        *telemetry.Recorder // nil: telemetry disabled

	mu   sync.Mutex
	pool *parallel.Pool
}

// Option configures a Context.
type Option func(*Context)

// WithPlatform selects the platform model whose cache hierarchy drives
// packing decisions and blocking. Default: Kunpeng 920.
func WithPlatform(p *Platform) Option {
	return func(c *Context) { c.plat = p }
}

// WithThreads fixes the parallel width. Zero restores the automatic policy:
// small inputs run single-threaded, irregular-shaped inputs use all cores
// (§7.4). One disables parallelism.
func WithThreads(n int) Option {
	return func(c *Context) { c.threads = n }
}

// WithNumericGuard enables the runtime numeric guard: the driver scans
// operand and result blocks for NaN/Inf, and a fast-path kernel that panics
// or manufactures non-finite values from all-finite inputs is demoted — per
// (platform, precision) — to the portable reference path. The degraded call
// still succeeds; Degradations reports what was demoted and why. The scans
// cost a pass over the operands, so this is a debug/hardening option, not
// the default.
func WithNumericGuard() Option {
	return func(c *Context) { c.guard = true }
}

// WithAliasCheck makes batch calls validate up front that no two entries
// write overlapping C storage, returning ErrAliasedBatch instead of racing.
// Adjacent-but-disjoint views of one backing array are allowed.
func WithAliasCheck() Option {
	return func(c *Context) { c.aliasCheck = true }
}

// WithDeadline bounds every call made through the context. Parallel calls
// arm the stuck-worker watchdog with d as the per-block budget: a worker
// exceeding it converts the call into a *StuckWorkerError instead of a hang
// (the output buffer is then undefined — the stuck goroutine cannot be
// killed). Batch calls additionally abandon unstarted entries once d
// expires, surfacing a *BatchCancelError that unwraps to
// context.DeadlineExceeded. Zero disables the bound (the default).
func WithDeadline(d time.Duration) Option {
	return func(c *Context) { c.deadline = d }
}

// WithoutTransientRetry disables the transparent transient-fault retry. By
// default a fast path that panics trips its circuit breaker and the failed
// block is recomputed once on the reference path — the call succeeds,
// degraded. Without the retry, such a panic surfaces as *KernelPanicError
// (the pre-self-healing behaviour, useful when callers want to observe raw
// failures).
func WithoutTransientRetry() Option {
	return func(c *Context) { c.retry = false }
}

// New builds a Context.
func New(opts ...Option) *Context {
	c := &Context{plat: platform.KP920(), retry: true}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close releases the context's worker pool, if one was started. The context
// remains usable; a new pool is started on demand. Close must not overlap
// in-flight GEMM calls.
func (c *Context) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool != nil {
		c.pool.Close()
		c.pool = nil
	}
}

// Platform returns the context's platform model.
func (c *Context) Platform() *Platform { return c.plat }

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// threadsFor implements the §7.4 policy: small GEMM runs single-threaded
// (parallelism across independent problems is the caller's job); irregular
// or large GEMM uses every core.
func (c *Context) threadsFor(m, n, k int) int {
	// A degenerate problem that fits inside one micro-tile cannot be
	// partitioned (the C split is over m×n), so no width — configured or
	// automatic — ever justifies spinning up the pool for it.
	if m <= 4 && n <= 4 {
		return 1
	}
	if c.threads > 0 {
		return c.threads
	}
	// Irregular: one C dimension much larger than the other, or the work
	// is simply large.
	large := m >= 256 && n >= 256
	irregular := (m >= 8*n || n >= 8*m) && (m >= 512 || n >= 512)
	if large || irregular {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

func (c *Context) ensurePool(threads int) *parallel.Pool {
	if threads <= 1 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool == nil {
		var obs parallel.Observer
		if c.tel != nil {
			obs = c.tel
		}
		c.pool = parallel.NewPoolObserved(threads, obs)
	}
	return c.pool
}

// chooseThreads runs the §7.4 policy and records its decision: requested is
// the width the caller configured (WithThreads) or the machine's
// parallelism under the automatic policy, chosen what the policy granted —
// the visibility needed to see whether clamping ever starves large shapes.
func (c *Context) chooseThreads(m, n, k int) int {
	chosen := c.threadsFor(m, n, k)
	if c.tel != nil {
		requested := c.threads
		if requested == 0 {
			requested = gomaxprocs()
		}
		c.tel.ThreadChoice(requested, chosen)
	}
	return chosen
}

// SGEMM computes C = alpha·op(A)·op(B) + beta·C in single precision.
// op(A) is m×k and op(B) is k×n.
func (c *Context) SGEMM(mode Mode, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, cOut []float32, ldc int) error {
	threads := c.chooseThreads(m, n, k)
	cfg := c.config(threads)
	return core.SGEMM(cfg, mode, m, n, k, alpha, a, lda, b, ldb, beta, cOut, ldc)
}

// DGEMM computes C = alpha·op(A)·op(B) + beta·C in double precision.
func (c *Context) DGEMM(mode Mode, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, cOut []float64, ldc int) error {
	threads := c.chooseThreads(m, n, k)
	cfg := c.config(threads)
	return core.DGEMM(cfg, mode, m, n, k, alpha, a, lda, b, ldb, beta, cOut, ldc)
}

// config assembles the per-call driver configuration.
func (c *Context) config(threads int) core.Config {
	return core.Config{
		Plat:           c.plat,
		Threads:        threads,
		Pool:           c.ensurePool(threads),
		NumericGuard:   c.guard,
		CheckAlias:     c.aliasCheck,
		Deadline:       c.deadline,
		RetryTransient: c.retry,
		Tel:            c.tel,
	}
}

var defaultCtx = New()

// SGEMM runs single-precision GEMM on the default context.
func SGEMM(mode Mode, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) error {
	return defaultCtx.SGEMM(mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEMM runs double-precision GEMM on the default context.
func DGEMM(mode Mode, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) error {
	return defaultCtx.DGEMM(mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// Plan describes every decision the driver takes for a call (tile,
// blocking, §4 packing strategy, §6 partition); see core.Plan.
type Plan = core.Plan

// PlanFor returns the execution plan a context would follow for the given
// call, without running it. elemBytes is 4 (FP32) or 8 (FP64).
func (c *Context) PlanFor(mode Mode, m, n, k, elemBytes int) Plan {
	threads := c.threadsFor(m, n, k)
	return core.PlanFor(core.Config{Plat: c.plat, Threads: threads}, mode, m, n, k, elemBytes)
}

// Tile is a solved micro-kernel register tile.
type Tile = analytic.Tile

// MicroKernelTile returns the analytically optimal micro-kernel tile for an
// element size in bytes (§5.2, Eq. 1–2): 7×12 for FP32, 7×6 for FP64.
func MicroKernelTile(elemBytes int) Tile { return analytic.SolveForElem(elemBytes) }

// TuneTile runs the §10 future-work search: every feasible register tile
// evaluated through the instruction-level timing model on the platform,
// returning the searched optimum and the analytic tile's standing. On all
// modeled platforms the analytic tile ties the searched optimum (tested).
func TuneTile(p *Platform, elemBytes int) (best, analyticTile Tile) {
	r := tuner.SearchTile(p, elemBytes)
	return Tile{MR: r.Best.MR, NR: r.Best.NR, CMR: r.Best.CMR},
		analytic.SolveForElem(elemBytes)
}

// MicroKernelTileForVector solves Eq. 1–2 for an arbitrary SVE vector width
// in bits (§5.5): 128 reproduces the NEON tiles; wider vectors yield e.g.
// 9×16 (SVE-256 FP32) and 15×16 (SVE-512 FP32).
func MicroKernelTileForVector(vectorBits, elemBytes int) (Tile, error) {
	return analytic.SolveForVector(vectorBits, elemBytes)
}

// Blocking holds the Goto-loop cache blocking parameters.
type Blocking = analytic.Blocking

// BlockingFor derives (mc, kc, nc) for a platform and element size (§5.5).
func BlockingFor(p *Platform, elemBytes int) Blocking { return analytic.BlockingFor(p, elemBytes) }

// Partition is a two-level parallel work split.
type Partition = analytic.Partition

// PartitionFor computes the shape-aware parallel partition of §6:
// Tn = ⌈√(T·N/M)⌉ rounded to a divisor of T.
func PartitionFor(m, n, threads int) Partition { return analytic.PartitionFor(m, n, threads) }

// Implementation identifies a modeled GEMM implementation for Predict.
type Implementation = perfsim.Library

// Implementations for performance prediction: LibShalom itself and the five
// libraries the paper compares against (§7.3).
func ImplLibShalom() Implementation { return perfsim.LibShalom() }

// ImplOpenBLAS returns the OpenBLAS persona.
func ImplOpenBLAS() Implementation { return perfsim.Baseline(baselines.OpenBLAS) }

// ImplBLIS returns the BLIS persona.
func ImplBLIS() Implementation { return perfsim.Baseline(baselines.BLIS) }

// ImplARMPL returns the ARM Performance Libraries persona.
func ImplARMPL() Implementation { return perfsim.Baseline(baselines.ARMPL) }

// ImplBLASFEO returns the BLASFEO persona.
func ImplBLASFEO() Implementation { return perfsim.Baseline(baselines.BLASFEO) }

// ImplLIBXSMM returns the LIBXSMM persona.
func ImplLIBXSMM() Implementation { return perfsim.Baseline(baselines.LIBXSMM) }

// Prediction is the performance model's output for one workload.
type Prediction struct {
	Seconds float64
	GFLOPS  float64
	// PercentOfPeak is relative to the platform peak at the used thread
	// count (single-core peak for 1 thread, chip peak otherwise).
	PercentOfPeak float64
}

// Predict evaluates the calibrated ARMv8 performance model (DESIGN.md §5)
// for an implementation on a platform. transB selects the NT data layout;
// elemBytes is 4 or 8; warm models operands pre-resident in cache.
func Predict(impl Implementation, p *Platform, mode Mode, m, n, k, elemBytes, threads int, warm bool) (Prediction, error) {
	if elemBytes != 4 && elemBytes != 8 {
		return Prediction{}, fmt.Errorf("libshalom: element size %d not supported", elemBytes)
	}
	if m <= 0 || n <= 0 || k <= 0 {
		return Prediction{}, fmt.Errorf("libshalom: non-positive dimensions %dx%dx%d", m, n, k)
	}
	r := perfsim.Run(impl, p, perfsim.Workload{
		M: m, N: n, K: k, ElemBytes: elemBytes,
		TransA: mode.TransA(), TransB: mode.TransB(),
		Threads: threads, Warm: warm,
	})
	peak := p.PeakCoreGFLOPS(elemBytes)
	if threads > 1 {
		peak = p.PeakGFLOPS(elemBytes)
	}
	return Prediction{Seconds: r.Seconds, GFLOPS: r.GFLOPS, PercentOfPeak: 100 * r.GFLOPS / peak}, nil
}
