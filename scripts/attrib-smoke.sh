#!/usr/bin/env sh
# attrib-smoke: end-to-end smoke test of the performance-attribution engine.
#
# Builds shalom-serve (race-enabled), shalom-load, and shalom-top, starts the
# server with fast attribution windows and the slow-shape-class chaos point
# armed against the "small" class, storms it with a mixed workload, and
# requires the seeded regression to surface everywhere the engine reports:
#   - /attrib: drift_events_total > 0 and the top-ranked tuning candidate is
#     the small class,
#   - /metrics: the drift counter for shape_class="small", the attribution
#     gauge family, and the Go runtime gauges are all present,
#   - shalom-top -attrib: the heat view marks the small class DRIFT,
#   - the server log carries the typed drift event and a clean drain.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/shalom-attrib-smoke.XXXXXX")
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

echo "attrib-smoke: building race-enabled binaries"
$GO build -race -o "$TMP/shalom-serve" ./cmd/shalom-serve
$GO build -o "$TMP/shalom-load" ./cmd/shalom-load
$GO build -o "$TMP/shalom-top" ./cmd/shalom-top

# Short windows and a low qualification floor so the detector converges in
# seconds; the chaos point stretches every small-class call by 5ms inside
# the timed region, collapsing its measured GFLOPS while the tiny and CP2K
# keys anchor the calibration.
"$TMP/shalom-serve" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -window 5ms \
    -attrib-window 150ms -attrib-windows 2 -attrib-min-calls 4 \
    -chaos-slow-class small -chaos-slow-delay 5ms \
    >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "attrib-smoke: FAIL: server never bound an address" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "attrib-smoke: FAIL: server exited before binding" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$TMP/addr")
echo "attrib-smoke: server up on $ADDR (small class seeded 5ms slow)"

# Storm until the drift detector latches (K=2 consecutive below-par
# windows), bounded so a broken detector fails rather than hangs.
DRIFTED=0
round=0
while [ "$round" -lt 10 ]; do
    round=$((round + 1))
    "$TMP/shalom-load" -addr "$ADDR" -n 400 -c 16 -mix mixed >>"$TMP/load.log" 2>&1
    sleep 0.4 # let attribution windows close over the storm's tail
    fetch "http://$ADDR/attrib" >"$TMP/attrib.json"
    if grep -q '"drift_events_total": [1-9]' "$TMP/attrib.json"; then
        DRIFTED=1
        break
    fi
done
if [ "$DRIFTED" -ne 1 ]; then
    echo "attrib-smoke: FAIL: no drift event after $round storms" >&2
    cat "$TMP/attrib.json" >&2
    exit 1
fi
echo "attrib-smoke: drift detected after $round storm(s)"

# /attrib ranks the seeded class first: candidates are ordered by score, so
# the report's first shape_class line is the top candidate's.
if ! grep -m1 '"shape_class"' "$TMP/attrib.json" | grep -q '"small"'; then
    echo "attrib-smoke: FAIL: top tuning candidate is not the seeded small class" >&2
    cat "$TMP/attrib.json" >&2
    exit 1
fi
echo "attrib-smoke: /attrib ranks the small class as top tuning candidate"

fetch "http://$ADDR/metrics" >"$TMP/metrics.txt"
for want in \
    'libshalom_attrib_drift_events_total{shape_class="small"}' \
    'libshalom_attrib_rel_efficiency{' \
    'libshalom_attrib_candidate_score{' \
    'libshalom_attrib_calls_total{' \
    'libshalom_go_goroutines' \
    'libshalom_go_heap_objects_bytes'; do
    if ! grep -Fq "$want" "$TMP/metrics.txt"; then
        echo "attrib-smoke: FAIL: /metrics missing $want" >&2
        exit 1
    fi
done
echo "attrib-smoke: /metrics carries the drift counter and attribution gauges"

"$TMP/shalom-top" -attrib "http://$ADDR" >"$TMP/top.txt"
if ! grep -q "DRIFT" "$TMP/top.txt" || ! grep -q "small" "$TMP/top.txt"; then
    echo "attrib-smoke: FAIL: shalom-top heat view does not mark the small class DRIFT" >&2
    cat "$TMP/top.txt" >&2
    exit 1
fi
echo "attrib-smoke: shalom-top heat view marks the small class DRIFT"

echo "attrib-smoke: SIGTERM — expecting a clean drain"
kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
SERVE_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "attrib-smoke: FAIL: server exited $STATUS after SIGTERM" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
if ! grep -q "DRIFT" "$TMP/serve.log"; then
    echo "attrib-smoke: FAIL: server log has no drift event" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
if ! grep -q "attribution —" "$TMP/serve.log"; then
    echo "attrib-smoke: FAIL: server log has no attribution summary" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
echo "attrib-smoke: PASS"
