#!/usr/bin/env sh
# router-smoke: end-to-end smoke test of the fault-tolerant sharded router
# tier against a live three-backend fleet.
#
# Builds shalom-serve, a race-enabled shalom-router and shalom-load, starts
# three backends plus the router, and requires:
#   - a baseline storm through the router answers every request (no sheds,
#     no errors) across the fleet,
#   - SIGKILL of one backend mid-storm loses nothing: every admitted request
#     is still answered (hedged retries route around the corpse),
#   - the killed backend is ejected (libshalom_router_ejections_total > 0
#     in the router's /metrics) and, once restarted on its old port,
#     readmitted (libshalom_router_readmissions_total > 0),
#   - a SIGTERM rolling drain of the router exits 0 with a drain report.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/shalom-router-smoke.XXXXXX")
PIDS=""
ROUTER_PID=""
cleanup() {
    [ -n "$ROUTER_PID" ] && kill -9 "$ROUTER_PID" 2>/dev/null || true
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

echo "router-smoke: building binaries (race-enabled router)"
$GO build -o "$TMP/shalom-serve" ./cmd/shalom-serve
$GO build -race -o "$TMP/shalom-router" ./cmd/shalom-router
$GO build -o "$TMP/shalom-load" ./cmd/shalom-load

start_backend() { # $1: index, $2: listen address
    "$TMP/shalom-serve" -addr "$2" -addr-file "$TMP/addr$1" -window 2ms \
        >>"$TMP/serve$1.log" 2>&1 &
    eval "BACKEND$1_PID=$!"
    PIDS="$PIDS $!"
}

wait_file() { # $1: path, $2: what
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "router-smoke: FAIL: $2 never appeared" >&2
            exit 1
        fi
        sleep 0.1
    done
}

for b in 1 2 3; do
    start_backend "$b" 127.0.0.1:0
done
for b in 1 2 3; do
    wait_file "$TMP/addr$b" "backend $b address"
done
A1=$(cat "$TMP/addr1"); A2=$(cat "$TMP/addr2"); A3=$(cat "$TMP/addr3")
echo "router-smoke: backends up on $A1 $A2 $A3"

"$TMP/shalom-router" -backends "$A1,$A2,$A3" -addr 127.0.0.1:0 \
    -addr-file "$TMP/router-addr" -probe-interval 100ms -probe-timeout 500ms \
    -eject-threshold 3 -readmit-base 200ms -retry-budget 2 \
    >"$TMP/router.log" 2>&1 &
ROUTER_PID=$!
wait_file "$TMP/router-addr" "router address"
RADDR=$(cat "$TMP/router-addr")
echo "router-smoke: router up on $RADDR"

echo "router-smoke: baseline storm through the healthy fleet"
"$TMP/shalom-load" -addr "$RADDR" -router -n 96 -c 12 -mix tiny -fail-on-shed

echo "router-smoke: storm with SIGKILL of backend 1 mid-storm"
"$TMP/shalom-load" -addr "$RADDR" -router -n 600 -c 16 -mix tiny \
    -fail-on-shed -json "$TMP/bench-kill.json" >"$TMP/load-kill.log" 2>&1 &
LOAD_PID=$!
sleep 0.3
kill -9 "$BACKEND1_PID"
echo "router-smoke: backend 1 ($A1) killed"
STATUS=0
wait "$LOAD_PID" || STATUS=$?
cat "$TMP/load-kill.log"
if [ "$STATUS" -ne 0 ]; then
    echo "router-smoke: FAIL: requests were lost while a backend died mid-storm" >&2
    cat "$TMP/router.log" >&2
    exit 1
fi

fetch "http://$RADDR/metrics" >"$TMP/metrics-after-kill.txt"
EJECT=$(sed -n 's/^libshalom_router_ejections_total \([0-9][0-9]*\)$/\1/p' "$TMP/metrics-after-kill.txt")
if [ -z "$EJECT" ] || [ "$EJECT" -lt 1 ]; then
    echo "router-smoke: FAIL: no ejection recorded after the kill (ejections_total=$EJECT)" >&2
    cat "$TMP/metrics-after-kill.txt" >&2
    exit 1
fi
echo "router-smoke: backend ejected (ejections_total=$EJECT)"

echo "router-smoke: restarting backend 1 on its old port $A1"
rm -f "$TMP/addr1"
start_backend 1 "$A1"
wait_file "$TMP/addr1" "restarted backend 1 address"

i=0
while :; do
    fetch "http://$RADDR/metrics" >"$TMP/metrics-readmit.txt" 2>/dev/null || true
    READMIT=$(sed -n 's/^libshalom_router_readmissions_total \([0-9][0-9]*\)$/\1/p' "$TMP/metrics-readmit.txt")
    [ -n "$READMIT" ] && [ "$READMIT" -ge 1 ] && break
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "router-smoke: FAIL: restarted backend never readmitted" >&2
        cat "$TMP/router.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "router-smoke: backend readmitted (readmissions_total=$READMIT)"

echo "router-smoke: post-recovery storm across the full fleet"
"$TMP/shalom-load" -addr "$RADDR" -router -n 96 -c 12 -mix tiny \
    -fail-on-shed -json "$TMP/bench-recovered.json"

echo "router-smoke: SIGTERM — expecting a clean rolling drain"
kill -TERM "$ROUTER_PID"
STATUS=0
wait "$ROUTER_PID" || STATUS=$?
ROUTER_PID=""
cat "$TMP/router.log"
if [ "$STATUS" -ne 0 ]; then
    echo "router-smoke: FAIL: router exited $STATUS after SIGTERM" >&2
    exit 1
fi
if ! grep -q "drained" "$TMP/router.log"; then
    echo "router-smoke: FAIL: router log has no drain report" >&2
    exit 1
fi
echo "router-smoke: PASS"
