#!/usr/bin/env sh
# tune-smoke: end-to-end smoke test of the traffic-adaptive kernel autotuner.
#
# Builds shalom-serve (race-enabled), shalom-load, shalom-top, and
# shalom-journal, starts the server with -autotune and a deliberately
# detuned f32/small serving tile, storms it until the attribution feed
# flags the class, and requires the closed loop to run to promotion:
#   - /tune: the small class reaches state "promoted" with a tuned-* kernel,
#   - /metrics: the promoted event counter and the per-class state gauge,
#   - shalom-top -tune: the autotuner view shows the promoted class,
#   - shalom-load: throughput on the small mix rises after promotion,
#   - the journal carries a verifiable tune-promote record,
#   - the server log carries the detune seed, the promotion, and a clean
#     drain with the autotune summary line.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/shalom-tune-smoke.XXXXXX")
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

echo "tune-smoke: building race-enabled binaries"
$GO build -race -o "$TMP/shalom-serve" ./cmd/shalom-serve
$GO build -o "$TMP/shalom-load" ./cmd/shalom-load
$GO build -o "$TMP/shalom-top" ./cmd/shalom-top
$GO build -o "$TMP/shalom-journal" ./cmd/shalom-journal

# Short attribution windows and a fast tuning period so the loop converges
# in seconds; the detuned 1x4 tile collapses the small class's measured
# GFLOPS while the other classes anchor the calibration, so the feed ranks
# f32/small as the top tuning candidate.
"$TMP/shalom-serve" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -window 5ms \
    -attrib-window 150ms -attrib-windows 2 -attrib-min-calls 4 \
    -autotune -autotune-interval 250ms -autotune-min-score 0.001 \
    -detune-class small -journal "$TMP/journal" \
    >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "tune-smoke: FAIL: server never bound an address" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "tune-smoke: FAIL: server exited before binding" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$TMP/addr")
echo "tune-smoke: server up on $ADDR (f32/small seeded with detuned 1x4 tile)"
if ! grep -q "DETUNE seeded f32/small" "$TMP/serve.log"; then
    echo "tune-smoke: FAIL: server log has no detune seed line" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi

# Baseline: measured throughput of the small mix while the detuned tile
# serves the class.
"$TMP/shalom-load" -addr "$ADDR" -n 300 -c 8 -mix small \
    -json "$TMP/before.json" >>"$TMP/load.log" 2>&1
BEFORE=$(grep -o '"gflops": [0-9.]*' "$TMP/before.json" | head -1 | grep -o '[0-9.]*$')
echo "tune-smoke: detuned baseline ${BEFORE} GFLOPS on the small mix"

# Storm until the closed loop runs search -> prove -> canary -> promote,
# bounded so a stuck loop fails rather than hangs. The mixed traffic keeps
# the calibration anchored while the small-class calls both feed the
# attribution score and settle the canary.
PROMOTED=0
round=0
while [ "$round" -lt 15 ]; do
    round=$((round + 1))
    "$TMP/shalom-load" -addr "$ADDR" -n 400 -c 16 -mix mixed >>"$TMP/load.log" 2>&1
    sleep 0.5 # let attribution windows close and the tuning loop tick
    fetch "http://$ADDR/tune" >"$TMP/tune.json"
    if grep -q '"state": "promoted"' "$TMP/tune.json"; then
        PROMOTED=1
        break
    fi
done
if [ "$PROMOTED" -ne 1 ]; then
    echo "tune-smoke: FAIL: no promotion after $round storms" >&2
    cat "$TMP/tune.json" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
echo "tune-smoke: promotion after $round storm(s)"

# /tune names the tuned candidate and the incumbent it displaced.
for want in '"shape_class": "small"' '"kernel": "tuned-' '"incumbent_kernel": "detuned-1x4"'; do
    if ! grep -q "$want" "$TMP/tune.json"; then
        echo "tune-smoke: FAIL: /tune missing $want" >&2
        cat "$TMP/tune.json" >&2
        exit 1
    fi
done
echo "tune-smoke: /tune shows the promoted tuned kernel over the detuned incumbent"

fetch "http://$ADDR/metrics" >"$TMP/metrics.txt"
for want in \
    'libshalom_autotune_events_total{event="promoted"}' \
    'libshalom_autotune_events_total{event="proved"}' \
    'libshalom_autotune_events_total{event="canary"}' \
    'libshalom_autotune_class_state{precision="f32",shape_class="small",state="promoted"}' \
    'libshalom_autotune_overrides' \
    'libshalom_autotune_class_candidate_gflops{'; do
    if ! grep -Fq "$want" "$TMP/metrics.txt"; then
        echo "tune-smoke: FAIL: /metrics missing $want" >&2
        exit 1
    fi
done
echo "tune-smoke: /metrics carries the autotune counters and class-state gauges"

"$TMP/shalom-top" -tune "http://$ADDR" >"$TMP/top.txt"
if ! grep -q "promoted" "$TMP/top.txt" || ! grep -q "tuned-" "$TMP/top.txt"; then
    echo "tune-smoke: FAIL: shalom-top tune view does not show the promoted class" >&2
    cat "$TMP/top.txt" >&2
    exit 1
fi
echo "tune-smoke: shalom-top tune view shows the promoted class"

# The promoted tile serves measurably faster than the detuned baseline.
"$TMP/shalom-load" -addr "$ADDR" -n 300 -c 8 -mix small \
    -json "$TMP/after.json" >>"$TMP/load.log" 2>&1
AFTER=$(grep -o '"gflops": [0-9.]*' "$TMP/after.json" | head -1 | grep -o '[0-9.]*$')
echo "tune-smoke: promoted throughput ${AFTER} GFLOPS on the small mix (was ${BEFORE})"
if ! awk "BEGIN{exit !($AFTER > $BEFORE)}"; then
    echo "tune-smoke: FAIL: promotion did not raise small-mix throughput ($BEFORE -> $AFTER GFLOPS)" >&2
    exit 1
fi

echo "tune-smoke: SIGTERM — expecting a clean drain"
kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
SERVE_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "tune-smoke: FAIL: server exited $STATUS after SIGTERM" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
if ! grep -q "shalom-serve: autotune —" "$TMP/serve.log"; then
    echo "tune-smoke: FAIL: server log has no autotune summary" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
if grep "shalom-serve: autotune —" "$TMP/serve.log" | grep -q "promoted 0"; then
    echo "tune-smoke: FAIL: autotune summary reports no promotion" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi

# The journal verifies end to end and carries the promotion record.
if ! "$TMP/shalom-journal" verify "$TMP/journal" >>"$TMP/journal.log" 2>&1; then
    echo "tune-smoke: FAIL: journal does not verify" >&2
    cat "$TMP/journal.log" >&2
    exit 1
fi
"$TMP/shalom-journal" dump "$TMP/journal" >"$TMP/dump.txt"
if ! grep -q "tune-promote" "$TMP/dump.txt"; then
    echo "tune-smoke: FAIL: journal has no tune-promote record" >&2
    grep -v admit "$TMP/dump.txt" | tail -20 >&2
    exit 1
fi
echo "tune-smoke: journal verifies and carries the tune-promote record"
echo "tune-smoke: PASS"
