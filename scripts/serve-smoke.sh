#!/usr/bin/env sh
# serve-smoke: end-to-end smoke test of the GEMM serving subsystem.
#
# Builds shalom-serve (race-enabled) and shalom-load, starts the server on an
# ephemeral port, replays a small closed-loop tiny-GEMM storm, and requires:
#   - every request answered 200 (no sheds, no errors),
#   - at least one flush with batch size > 1 (the /metrics coalesce counter
#     moved — asserted by shalom-load -assert-coalesced),
#   - a clean SIGTERM drain: the server exits 0 and reports zero expired
#     (dropped-after-admission) requests.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/shalom-serve-smoke.XXXXXX")
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building race-enabled binaries"
$GO build -race -o "$TMP/shalom-serve" ./cmd/shalom-serve
$GO build -o "$TMP/shalom-load" ./cmd/shalom-load

"$TMP/shalom-serve" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -window 5ms \
    >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: FAIL: server never bound an address" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve-smoke: FAIL: server exited before binding" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$TMP/addr")
echo "serve-smoke: server up on $ADDR"

"$TMP/shalom-load" -addr "$ADDR" -n 64 -c 16 -mix tiny \
    -assert-coalesced -fail-on-shed -json "$TMP/bench.json"

echo "serve-smoke: SIGTERM — expecting a clean drain"
kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
SERVE_PID=""
cat "$TMP/serve.log"
if [ "$STATUS" -ne 0 ]; then
    echo "serve-smoke: FAIL: server exited $STATUS after SIGTERM" >&2
    exit 1
fi
if ! grep -q "drained" "$TMP/serve.log"; then
    echo "serve-smoke: FAIL: server log has no drain report" >&2
    exit 1
fi
if ! grep -q "expired 0," "$TMP/serve.log"; then
    echo "serve-smoke: FAIL: drain dropped admitted requests" >&2
    exit 1
fi
echo "serve-smoke: PASS"
