#!/usr/bin/env sh
# journal-smoke: end-to-end smoke test of the tamper-evident request journal.
#
# Builds shalom-serve (race-enabled), shalom-load, and shalom-journal, then
# drives the full forensic loop:
#   1. serve with journaling (payload capture on), storm it, SIGTERM drain —
#      the journal must seal cleanly,
#   2. shalom-journal verify must pass on the sealed capture,
#   3. flipping one byte in a copy must make verify FAIL (tamper evidence),
#   4. a fresh server replays the capture via shalom-load -replay and every
#      completed request must reproduce its journaled result hash bitwise,
#   5. the load report JSON must carry the provenance anchors (config hash
#      and journal chain head).
set -eu

GO=${GO:-go}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/shalom-journal-smoke.XXXXXX")
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "journal-smoke: building binaries"
$GO build -race -o "$TMP/shalom-serve" ./cmd/shalom-serve
$GO build -o "$TMP/shalom-load" ./cmd/shalom-load
$GO build -o "$TMP/shalom-journal" ./cmd/shalom-journal

# start_serve JOURNAL_DIR — boots a journaling server, sets SERVE_PID/ADDR.
start_serve() {
    : >"$TMP/addr"
    "$TMP/shalom-serve" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -window 5ms \
        -journal "$1" -journal-payloads \
        >"$TMP/serve.log" 2>&1 &
    SERVE_PID=$!
    i=0
    while [ ! -s "$TMP/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "journal-smoke: FAIL: server never bound an address" >&2
            cat "$TMP/serve.log" >&2
            exit 1
        fi
        if ! kill -0 "$SERVE_PID" 2>/dev/null; then
            echo "journal-smoke: FAIL: server exited before binding" >&2
            cat "$TMP/serve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR=$(cat "$TMP/addr")
}

# stop_serve — SIGTERM drain; the journal must seal and the server exit 0.
stop_serve() {
    kill -TERM "$SERVE_PID"
    STATUS=0
    wait "$SERVE_PID" || STATUS=$?
    SERVE_PID=""
    if [ "$STATUS" -ne 0 ]; then
        echo "journal-smoke: FAIL: server exited $STATUS after SIGTERM" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    if ! grep -q "journal sealed" "$TMP/serve.log"; then
        echo "journal-smoke: FAIL: server log has no journal seal report" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
}

echo "journal-smoke: capture run"
mkdir "$TMP/capture"
start_serve "$TMP/capture"
echo "journal-smoke: server up on $ADDR"
"$TMP/shalom-load" -addr "$ADDR" -n 48 -c 8 -mix tiny \
    -fail-on-shed -json "$TMP/capture.json"
stop_serve

echo "journal-smoke: verifying the sealed capture"
"$TMP/shalom-journal" verify "$TMP/capture"
"$TMP/shalom-journal" ls "$TMP/capture" >/dev/null

echo "journal-smoke: tamper check — one flipped byte must fail verification"
cp -r "$TMP/capture" "$TMP/tampered"
SEG=$(ls "$TMP/tampered"/seg-*.shj | head -1)
# Flip one byte mid-file (past the magic) with no size change.
SIZE=$(wc -c <"$SEG")
OFF=$((SIZE / 2))
BYTE=$(dd if="$SEG" bs=1 skip="$OFF" count=1 2>/dev/null | od -An -tu1 | tr -d ' \n')
FLIPPED=$((BYTE ^ 64))
printf "$(printf '\\%03o' "$FLIPPED")" |
    dd of="$SEG" bs=1 seek="$OFF" count=1 conv=notrunc 2>/dev/null
if "$TMP/shalom-journal" verify "$TMP/tampered" >/dev/null 2>&1; then
    echo "journal-smoke: FAIL: verify accepted a tampered segment (byte $OFF of $SEG)" >&2
    exit 1
fi

echo "journal-smoke: replay run — results must be bitwise identical"
mkdir "$TMP/replay"
start_serve "$TMP/replay"
"$TMP/shalom-load" -addr "$ADDR" -replay "$TMP/capture" -replay-speed 0 \
    -json "$TMP/replay.json"
stop_serve
"$TMP/shalom-journal" verify "$TMP/replay" >/dev/null

echo "journal-smoke: checking provenance anchors in the reports"
for field in config_hash journal_chain_head; do
    if ! grep -q "\"$field\"" "$TMP/capture.json"; then
        echo "journal-smoke: FAIL: capture report lacks $field" >&2
        cat "$TMP/capture.json" >&2
        exit 1
    fi
done
if ! grep -q '"replay_chain_head"' "$TMP/replay.json"; then
    echo "journal-smoke: FAIL: replay report lacks replay_chain_head" >&2
    cat "$TMP/replay.json" >&2
    exit 1
fi
echo "journal-smoke: PASS"
