package libshalom_test

import (
	"fmt"

	"libshalom"
)

// ExampleSGEMM multiplies two tiny row-major matrices.
func ExampleSGEMM() {
	a := []float32{1, 2, 3, 4} // 2×2 row-major
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	if err := libshalom.SGEMM(libshalom.NN, 2, 2, 2, 1, a, 2, b, 2, 0, c, 2); err != nil {
		panic(err)
	}
	fmt.Println(c)
	// Output: [19 22 43 50]
}

// ExampleSGEMMColMajor shows the Fortran-layout entry point computing the
// same product on column-major data.
func ExampleSGEMMColMajor() {
	a := []float32{1, 3, 2, 4} // 2×2 column-major: columns (1,3) and (2,4)
	b := []float32{5, 7, 6, 8}
	c := make([]float32, 4)
	if err := libshalom.SGEMMColMajor(false, false, 2, 2, 2, 1, a, 2, b, 2, 0, c, 2); err != nil {
		panic(err)
	}
	fmt.Println(c) // column-major result
	// Output: [19 43 22 50]
}

// ExampleMicroKernelTile queries the paper's analytic register-tile model
// (Eq. 1–2).
func ExampleMicroKernelTile() {
	t32 := libshalom.MicroKernelTile(4)
	t64 := libshalom.MicroKernelTile(8)
	fmt.Printf("FP32: %dx%d  FP64: %dx%d\n", t32.MR, t32.NR, t64.MR, t64.NR)
	// Output: FP32: 7x12  FP64: 7x6
}

// ExamplePartitionFor reproduces the paper's §6.1 worked example: 64 cores
// on a 2048×256 C give Tm=16, Tn=4.
func ExamplePartitionFor() {
	p := libshalom.PartitionFor(2048, 256, 64)
	fmt.Printf("Tm=%d Tn=%d\n", p.TM, p.TN)
	// Output: Tm=16 Tn=4
}

// ExampleContext_PlanFor inspects the decisions the driver will take for an
// irregular-shaped call without running it.
func ExampleContext_PlanFor() {
	ctx := libshalom.New(libshalom.WithPlatform(libshalom.Phytium2000()), libshalom.WithThreads(64))
	defer ctx.Close()
	plan := ctx.PlanFor(libshalom.NT, 64, 50176, 576, 4)
	fmt.Printf("tile %dx%d, B packing: %s, partition Tm=%d Tn=%d\n",
		plan.Tile.MR, plan.Tile.NR, plan.BStrategy, plan.Partition.TM, plan.Partition.TN)
	// Output: tile 7x12, B packing: overlap, partition Tm=1 Tn=64
}
