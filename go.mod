module libshalom

go 1.22
