//go:build telemetryprobe

package libshalom

// The telemetryprobe build tag compiles a counter into every telemetry
// atomic-write site (see internal/telemetry/probe_on.go). This test is the
// non-flaky enforcement of the overhead budget: instead of comparing
// wall-clock times — noise at the <2% scale on shared CI machines — it
// counts the writes directly and requires exactly zero on the disabled
// path. Run via `make probe`:
//
//	go test -tags telemetryprobe -run TestTelemetryProbe ./...

import (
	"testing"

	"libshalom/internal/mat"
	"libshalom/internal/telemetry"
)

func TestTelemetryProbe(t *testing.T) {
	rng := mat.NewRNG(11)
	A := mat.RandomF32(64, 64, rng)
	B := mat.RandomF32(64, 64, rng)
	C := mat.NewF32(64, 64)
	run := func(ctx *Context) {
		t.Helper()
		if err := ctx.SGEMM(NN, 64, 64, 64, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
			t.Fatal(err)
		}
	}

	off := New(WithThreads(1))
	defer off.Close()
	run(off) // warm up one-time work (contract verification)
	telemetry.ProbeReset()
	for i := 0; i < 10; i++ {
		run(off)
	}
	if n := telemetry.ProbeAtomicWrites(); n != 0 {
		t.Fatalf("telemetry-off SGEMM performed %d telemetry atomic writes, want exactly 0", n)
	}

	// Sanity-check the probe itself: the enabled path must register writes,
	// otherwise a broken probe would vacuously pass the assertion above.
	on := New(WithThreads(1), WithTelemetry())
	defer on.Close()
	telemetry.ProbeReset()
	run(on)
	if n := telemetry.ProbeAtomicWrites(); n == 0 {
		t.Fatal("telemetry-on SGEMM registered no probe writes; probe sites are miswired")
	}
}
