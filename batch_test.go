package libshalom

import (
	"testing"

	"libshalom/internal/mat"
)

func TestPublicSGEMMBatch(t *testing.T) {
	ctx := New()
	defer ctx.Close()
	rng := mat.NewRNG(9)
	const count = 24
	batch := make([]SBatchEntry, count)
	wants := make([]*mat.F32, count)
	for i := range batch {
		m := rng.Intn(24) + 1
		a := mat.RandomF32(m, m, rng)
		b := mat.RandomF32(m, m, rng)
		c := mat.NewF32(m, m)
		want := mat.NewF32(m, m)
		mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, a, b, 0, want)
		wants[i] = want
		batch[i] = SBatchEntry{M: m, N: m, K: m, Alpha: 1,
			A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride, Beta: 0, C: c.Data, LDC: c.Stride}
	}
	if err := ctx.SGEMMBatch(NN, batch); err != nil {
		t.Fatal(err)
	}
	for i, e := range batch {
		got := &mat.F32{Rows: e.M, Cols: e.N, Stride: e.LDC, Data: e.C}
		if !got.Equal(wants[i], 1e-3) {
			t.Fatalf("entry %d wrong", i)
		}
	}
}

func TestPublicDGEMMBatchNT(t *testing.T) {
	ctx := New(WithThreads(3))
	defer ctx.Close()
	rng := mat.NewRNG(10)
	const count = 7
	batch := make([]DBatchEntry, count)
	wants := make([]*mat.F64, count)
	for i := range batch {
		m, n, k := rng.Intn(16)+1, rng.Intn(16)+1, rng.Intn(16)+1
		a := mat.RandomF64(m, k, rng)
		bt := mat.RandomF64(n, k, rng)
		c := mat.RandomF64(m, n, rng)
		want := c.Clone()
		mat.RefGEMMF64(mat.NoTrans, mat.Transpose, 2, a, bt, -1, want)
		wants[i] = want
		batch[i] = DBatchEntry{M: m, N: n, K: k, Alpha: 2,
			A: a.Data, LDA: a.Stride, B: bt.Data, LDB: bt.Stride, Beta: -1, C: c.Data, LDC: c.Stride}
	}
	if err := ctx.DGEMMBatch(NT, batch); err != nil {
		t.Fatal(err)
	}
	for i, e := range batch {
		got := &mat.F64{Rows: e.M, Cols: e.N, Stride: e.LDC, Data: e.C}
		if !got.Equal(wants[i], 1e-10) {
			t.Fatalf("entry %d wrong", i)
		}
	}
}

func TestBatchThreadsPolicy(t *testing.T) {
	if batchThreads(1) != 1 {
		t.Fatal("single entry must be serial")
	}
	if batchThreads(2) < 1 {
		t.Fatal("policy must return at least one thread")
	}
	if batchThreads(10000) > gomaxprocs() {
		t.Fatal("policy must not exceed machine parallelism")
	}
}

func TestMicroKernelTileForVectorExport(t *testing.T) {
	tl, err := MicroKernelTileForVector(512, 4)
	if err != nil || tl.MR != 15 || tl.NR != 16 {
		t.Fatalf("SVE-512 FP32 tile = %dx%d, %v", tl.MR, tl.NR, err)
	}
	if _, err := MicroKernelTileForVector(100, 4); err == nil {
		t.Fatal("invalid width accepted")
	}
	// The A64FX model must be consistent with its SVE width.
	if A64FX().Lanes(4) != 16 {
		t.Fatal("A64FX lanes wrong")
	}
}
