package libshalom

import (
	"testing"

	"libshalom/internal/mat"
)

func TestPublicSGEMMBatch(t *testing.T) {
	ctx := New()
	defer ctx.Close()
	rng := mat.NewRNG(9)
	const count = 24
	batch := make([]SBatchEntry, count)
	wants := make([]*mat.F32, count)
	for i := range batch {
		m := rng.Intn(24) + 1
		a := mat.RandomF32(m, m, rng)
		b := mat.RandomF32(m, m, rng)
		c := mat.NewF32(m, m)
		want := mat.NewF32(m, m)
		mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, a, b, 0, want)
		wants[i] = want
		batch[i] = SBatchEntry{M: m, N: m, K: m, Alpha: 1,
			A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride, Beta: 0, C: c.Data, LDC: c.Stride}
	}
	if err := ctx.SGEMMBatch(NN, batch); err != nil {
		t.Fatal(err)
	}
	for i, e := range batch {
		got := &mat.F32{Rows: e.M, Cols: e.N, Stride: e.LDC, Data: e.C}
		if !got.Equal(wants[i], 1e-3) {
			t.Fatalf("entry %d wrong", i)
		}
	}
}

func TestPublicDGEMMBatchNT(t *testing.T) {
	ctx := New(WithThreads(3))
	defer ctx.Close()
	rng := mat.NewRNG(10)
	const count = 7
	batch := make([]DBatchEntry, count)
	wants := make([]*mat.F64, count)
	for i := range batch {
		m, n, k := rng.Intn(16)+1, rng.Intn(16)+1, rng.Intn(16)+1
		a := mat.RandomF64(m, k, rng)
		bt := mat.RandomF64(n, k, rng)
		c := mat.RandomF64(m, n, rng)
		want := c.Clone()
		mat.RefGEMMF64(mat.NoTrans, mat.Transpose, 2, a, bt, -1, want)
		wants[i] = want
		batch[i] = DBatchEntry{M: m, N: n, K: k, Alpha: 2,
			A: a.Data, LDA: a.Stride, B: bt.Data, LDB: bt.Stride, Beta: -1, C: c.Data, LDC: c.Stride}
	}
	if err := ctx.DGEMMBatch(NT, batch); err != nil {
		t.Fatal(err)
	}
	for i, e := range batch {
		got := &mat.F64{Rows: e.M, Cols: e.N, Stride: e.LDC, Data: e.C}
		if !got.Equal(wants[i], 1e-10) {
			t.Fatalf("entry %d wrong", i)
		}
	}
}

func TestBatchThreadsPolicy(t *testing.T) {
	if batchThreads(1) != 1 {
		t.Fatal("single entry must be serial")
	}
	if batchThreads(2) < 1 {
		t.Fatal("policy must return at least one thread")
	}
	if batchThreads(10000) > gomaxprocs() {
		t.Fatal("policy must not exceed machine parallelism")
	}
}

func TestMicroKernelTileForVectorExport(t *testing.T) {
	tl, err := MicroKernelTileForVector(512, 4)
	if err != nil || tl.MR != 15 || tl.NR != 16 {
		t.Fatalf("SVE-512 FP32 tile = %dx%d, %v", tl.MR, tl.NR, err)
	}
	if _, err := MicroKernelTileForVector(100, 4); err == nil {
		t.Fatal("invalid width accepted")
	}
	// The A64FX model must be consistent with its SVE width.
	if A64FX().Lanes(4) != 16 {
		t.Fatal("A64FX lanes wrong")
	}
}

// A batch of micro-tile-degenerate entries (every m, n <= 4) must never spin
// the worker pool, whatever width was requested: the per-entry work is
// smaller than a task dispatch. This is the batch-path counterpart of the
// single-call degenerate clamp in threadsFor — the assertion the serving
// path relies on when a storm of 1x1x1 requests coalesces into one flush.
func TestBatchDegenerateClampSkipsPool(t *testing.T) {
	ctx := New(WithThreads(8), WithTelemetry())
	defer ctx.Close()
	rng := mat.NewRNG(11)
	const count = 64
	batch := make([]SBatchEntry, count)
	for i := range batch {
		a := mat.RandomF32(1, 1, rng)
		b := mat.RandomF32(1, 1, rng)
		c := mat.NewF32(1, 1)
		batch[i] = SBatchEntry{M: 1, N: 1, K: 1, Alpha: 1,
			A: a.Data, LDA: 1, B: b.Data, LDB: 1, Beta: 0, C: c.Data, LDC: 1}
	}
	if err := ctx.SGEMMBatch(NN, batch); err != nil {
		t.Fatal(err)
	}
	snap := ctx.Snapshot()
	if snap.Pool.TasksQueued != 0 {
		t.Fatalf("degenerate batch queued %d pool tasks, want 0", snap.Pool.TasksQueued)
	}
	if snap.Threads.Calls != 1 || snap.Threads.ClampedCalls != 1 || snap.Threads.ChosenSum != 1 {
		t.Fatalf("thread policy record = %+v, want one clamped call of width 1", snap.Threads)
	}

	// One non-degenerate entry lifts the clamp: the batch may parallelize.
	big := mat.RandomF32(8, 8, rng)
	bigC := mat.NewF32(8, 8)
	mixed := append(batch[:8:8], SBatchEntry{M: 8, N: 8, K: 8, Alpha: 1,
		A: big.Data, LDA: big.Stride, B: big.Data, LDB: big.Stride, Beta: 0, C: bigC.Data, LDC: bigC.Stride})
	if err := ctx.SGEMMBatch(NN, mixed); err != nil {
		t.Fatal(err)
	}
	snap = ctx.Snapshot()
	if snap.Pool.TasksQueued == 0 {
		t.Fatal("mixed batch never used the pool; the clamp is overreaching")
	}
}
