package libshalom

// Benchmark harness: one testing.B benchmark per paper table/figure (the
// model-driven reproductions from internal/bench; see DESIGN.md §4 and
// EXPERIMENTS.md), plus wall-clock benchmarks of this library's actual Go
// GEMM on the paper's workload classes.

import (
	"io"
	"testing"

	"libshalom/internal/baselines"
	"libshalom/internal/bench"
	"libshalom/internal/core"
	"libshalom/internal/kernels"
	"libshalom/internal/mat"
	"libshalom/internal/workloads"
)

// --- real wall-clock GEMM benchmarks (this library's Go implementation) ---

func benchSGEMM(b *testing.B, mode Mode, m, n, k, threads int) {
	b.Helper()
	rng := mat.NewRNG(1)
	ar, ac := m, k
	if mode.TransA() {
		ar, ac = k, m
	}
	br, bc := k, n
	if mode.TransB() {
		br, bc = n, k
	}
	A := mat.RandomF32(ar, ac, rng)
	B := mat.RandomF32(br, bc, rng)
	C := mat.NewF32(m, n)
	ctx := New(WithThreads(threads))
	defer ctx.Close()
	b.SetBytes(int64(2 * m * n * k)) // flops reported as "bytes" throughput
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.SGEMM(mode, m, n, k, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSGEMMSmall8(b *testing.B)    { benchSGEMM(b, NN, 8, 8, 8, 1) }
func BenchmarkSGEMMSmall32(b *testing.B)   { benchSGEMM(b, NN, 32, 32, 32, 1) }
func BenchmarkSGEMMSmall120(b *testing.B)  { benchSGEMM(b, NN, 120, 120, 120, 1) }
func BenchmarkSGEMMSmall32NT(b *testing.B) { benchSGEMM(b, NT, 32, 32, 32, 1) }

func BenchmarkSGEMMIrregular(b *testing.B)         { benchSGEMM(b, NT, 32, 2048, 512, 1) }
func BenchmarkSGEMMIrregularParallel(b *testing.B) { benchSGEMM(b, NT, 64, 4096, 576, 0) }

// BenchmarkTelemetryOff/On compare the 64x64x64 SGEMM hot path without and
// with the telemetry layer. The overhead budget is <2% for the disabled
// path; wall-clock deltas at that scale are noise on shared CI machines, so
// the budget is enforced non-flakily by the telemetryprobe build tag
// instead (TestTelemetryProbe: the disabled path performs exactly zero
// telemetry atomic writes, and TestTelemetryOffHotPathAllocs: zero
// allocations). These benchmarks exist to measure the enabled path's real
// cost locally: `go test -bench 'TelemetryO(n|ff)' -count 10`.
func BenchmarkTelemetryOff(b *testing.B) { benchTelemetry(b, New(WithThreads(1))) }
func BenchmarkTelemetryOn(b *testing.B)  { benchTelemetry(b, New(WithThreads(1), WithTelemetry())) }

func benchTelemetry(b *testing.B, ctx *Context) {
	b.Helper()
	defer ctx.Close()
	rng := mat.NewRNG(1)
	A := mat.RandomF32(64, 64, rng)
	B := mat.RandomF32(64, 64, rng)
	C := mat.NewF32(64, 64)
	b.SetBytes(2 * 64 * 64 * 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.SGEMM(NN, 64, 64, 64, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDGEMMCP2K(b *testing.B) {
	rng := mat.NewRNG(2)
	for _, sh := range workloads.CP2K() {
		sh := sh
		b.Run(sh.Name, func(b *testing.B) {
			A := mat.RandomF64(sh.M, sh.K, rng)
			B := mat.RandomF64(sh.K, sh.N, rng)
			C := mat.NewF64(sh.M, sh.N)
			ctx := New(WithThreads(1))
			b.SetBytes(int64(sh.Flops()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctx.DGEMM(NN, sh.M, sh.N, sh.K, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselineComparison measures this repo's runnable baseline
// implementations on the same small kernel, wall-clock.
func BenchmarkBaselineComparison(b *testing.B) {
	rng := mat.NewRNG(3)
	m := 32
	A := mat.RandomF32(m, m, rng)
	B := mat.RandomF32(m, m, rng)
	C := mat.NewF32(m, m)
	for _, lib := range baselines.All() {
		lib := lib
		b.Run(lib.String(), func(b *testing.B) {
			b.SetBytes(int64(2 * m * m * m))
			for i := 0; i < b.N; i++ {
				if err := baselines.SGEMM(lib, nil, 1, core.NN, m, m, m, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("LibShalom", func(b *testing.B) {
		ctx := New(WithThreads(1))
		b.SetBytes(int64(2 * m * m * m))
		for i := 0; i < b.N; i++ {
			if err := ctx.SGEMM(NN, m, m, m, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- one benchmark per paper table/figure (model-driven reproductions) ---

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := bench.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		e.Run(io.Discard)
	}
}

func BenchmarkTable1Platforms(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkFig2aMotivationSmall(b *testing.B)     { benchExperiment(b, "fig2a") }
func BenchmarkFig2bMotivationIrregular(b *testing.B) { benchExperiment(b, "fig2b") }
func BenchmarkFig6EdgeSchedules(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7SmallGEMMWarm(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8SmallGEMMCold(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9IrregularPhytium(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10IrregularKP920TX2(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11Scalability(b *testing.B)         { benchExperiment(b, "fig11") }
func BenchmarkFig12L2Misses(b *testing.B)            { benchExperiment(b, "fig12") }
func BenchmarkFig13Breakdown(b *testing.B)           { benchExperiment(b, "fig13") }
func BenchmarkFig14CP2K(b *testing.B)                { benchExperiment(b, "fig14") }
func BenchmarkFig15VGG(b *testing.B)                 { benchExperiment(b, "fig15") }

// BenchmarkMicroKernels measures the wall-clock throughput of the Go
// compute micro-kernels themselves: the specialized 7×12 path against the
// generic fallback on the same tile, and the FP64 7×6 kernel.
func BenchmarkMicroKernels(b *testing.B) {
	rng := mat.NewRNG(4)
	kc := 256
	a32 := make([]float32, 7*kc)
	b32 := make([]float32, kc*12)
	c32 := make([]float32, 7*12)
	for i := range a32 {
		a32[i] = rng.Float32()
	}
	for i := range b32 {
		b32[i] = rng.Float32()
	}
	flops := int64(2 * 7 * 12 * kc)
	b.Run("sgemm7x12-specialized", func(b *testing.B) {
		b.SetBytes(flops)
		for i := 0; i < b.N; i++ {
			kernels.SGEMMMicro(7, 12, kc, 1, a32, kc, b32, 12, 0, c32, 12)
		}
	})
	b.Run("sgemm7x11-generic", func(b *testing.B) {
		// One column narrower forces the generic path on comparable work.
		b.SetBytes(int64(2 * 7 * 11 * kc))
		for i := 0; i < b.N; i++ {
			kernels.SGEMMMicro(7, 11, kc, 1, a32, kc, b32, 12, 0, c32, 12)
		}
	})
	a64 := make([]float64, 7*kc)
	b64 := make([]float64, kc*6)
	c64 := make([]float64, 7*6)
	for i := range a64 {
		a64[i] = rng.Float64()
	}
	for i := range b64 {
		b64[i] = rng.Float64()
	}
	b.Run("dgemm7x6-specialized", func(b *testing.B) {
		b.SetBytes(int64(2 * 7 * 6 * kc))
		for i := 0; i < b.N; i++ {
			kernels.DGEMMMicro(7, 6, kc, 1, a64, kc, b64, 6, 0, c64, 6)
		}
	})
}
