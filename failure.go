package libshalom

import (
	"errors"

	"libshalom/internal/core"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
)

// Failure behaviour of the hardened runtime. LibShalom never lets a
// misbehaving kernel take down the process: panics inside the execution
// path are recovered and retried once on the reference path (transient
// retry, on by default), a kernel family that keeps misbehaving trips its
// per-(platform, precision) circuit breaker to the portable reference path,
// and — unlike the earlier sticky demotion — the breaker heals itself:
// after a cooldown it probes with canary calls (fast path shadowed by the
// reference, compared element-wise) and re-promotes the fast path once
// enough consecutive canaries agree. See DESIGN.md, "Self-healing model".

// KernelPanicError is returned when a fast-path block computation panics
// and the numeric guard is not enabled: the worker recovered, the pool
// stayed usable, and the error carries platform, mode, kernel path, the C
// block coordinates (plus batch entry index, if any) and the stack.
type KernelPanicError = guard.KernelPanicError

// DegradedReason classifies why a kernel path was demoted: a static
// contract violation found at registration verification, a runtime panic,
// or the numeric guard.
type DegradedReason = guard.Reason

// Demotion reasons.
const (
	DegradedContract = guard.ReasonContract
	DegradedPanic    = guard.ReasonPanic
	DegradedNumeric  = guard.ReasonNumeric
	DegradedCanary   = guard.ReasonCanary
)

// BreakerState is a circuit breaker's position in the self-healing state
// machine: healthy (fast path in use) → open (reference path until the
// cooldown expires) → probing (canary verification) → healthy.
type BreakerState = guard.State

// Breaker states.
const (
	BreakerHealthy = guard.StateHealthy
	BreakerOpen    = guard.StateOpen
	BreakerProbing = guard.StateProbing
)

// StuckWorkerError is returned when a call configured WithDeadline finds a
// worker exceeding its per-block budget: remaining blocks are cancelled and
// the call returns this typed error instead of hanging. The output buffer
// must then be treated as undefined. It implements Timeout() for
// net.Error-style checks.
type StuckWorkerError = guard.StuckWorkerError

// Degradation records one demotion of a kernel path to the reference path.
type Degradation = guard.Degradation

// BatchCancelError reports a batch call abandoned on context cancellation,
// with partial-completion accounting. errors.Is(err, context.Canceled)
// (or DeadlineExceeded) sees through it.
type BatchCancelError = core.BatchCancelError

// ErrAliasedBatch is returned when a batch's entries write overlapping C
// storage (checked by CheckSBatchAliasing/CheckDBatchAliasing, and up front
// by batch calls on a Context built WithAliasCheck).
var ErrAliasedBatch = core.ErrAliasedBatch

// BatchCompleted unwraps a batch call's error into per-entry completion
// accounting: done[i] reports whether entry i ran to completion (its C holds
// exactly the uncancelled result; un-done entries' C is untouched). ok is
// true when err is (or wraps) a *BatchCancelError — the partial-completion
// case a serving layer must split into per-request outcomes instead of
// failing the whole batch. A nil err means every entry completed; callers
// handle that case (and non-batch errors) before asking.
func BatchCompleted(err error) (done []bool, ok bool) {
	var bce *BatchCancelError
	if !errors.As(err, &bce) {
		return nil, false
	}
	return bce.Done, true
}

// Degradations lists every kernel path currently demoted to the reference
// path, across all platforms, sorted by (platform, kernel).
func Degradations() []Degradation { return guard.List("") }

// DegradationsFor lists the demotions recorded for one platform.
func DegradationsFor(p *Platform) []Degradation { return guard.List(p.Name) }

// DegradationHistory returns every breaker trip ever recorded, in sequence
// order — the full domino chain across re-opens and resets, where
// Degradations shows only what is degraded right now. Sequence numbers are
// monotonic for the process lifetime and survive ResetDegradations.
func DegradationHistory() []Degradation { return guard.History() }

// ResetDegradations clears the degradation registry and the per-platform
// contract-verification memo, re-promoting every kernel path. Meant for
// tests and for operators re-arming the fast path after an investigated
// incident. Trip sequence numbers are not reset.
func ResetDegradations() { guard.Reset() }

// HealingConfig is the self-healing policy: the base open→probing cooldown
// (doubled per re-trip), how many consecutive agreeing canaries close a
// probing breaker, and what fraction of probing calls pay the canary shadow
// cost. Zero fields select the documented defaults.
type HealingConfig = heal.Config

// ConfigureHealing installs a process-global self-healing policy and
// returns the previous one. Like the breaker registry it governs, the
// policy is shared by every Context.
func ConfigureHealing(c HealingConfig) HealingConfig { return heal.Configure(c) }

// HealthReport is a point-in-time view of the self-healing runtime: the
// active policy, every breaker record (including healed ones, whose trip
// count still drives backoff) and the full trip history.
type HealthReport = heal.Report

// Health assembles the current health report; shalom-info -health renders
// the same view on the command line.
func Health() HealthReport { return heal.Snapshot() }

// CheckSBatchAliasing reports ErrAliasedBatch if two FP32 batch entries
// write overlapping C storage. Adjacent-but-disjoint views of one backing
// array pass.
func CheckSBatchAliasing(batch []SBatchEntry) error { return core.CheckBatchAliasing(batch) }

// CheckDBatchAliasing is the FP64 counterpart of CheckSBatchAliasing.
func CheckDBatchAliasing(batch []DBatchEntry) error { return core.CheckBatchAliasing(batch) }
