package libshalom

import (
	"libshalom/internal/core"
	"libshalom/internal/guard"
)

// Failure behaviour of the hardened runtime. LibShalom never lets a
// misbehaving kernel take down the process: panics inside the execution
// path are recovered and surfaced as *KernelPanicError, and under
// WithNumericGuard a kernel family that panics or produces NaN/Inf from
// finite inputs is demoted — per (platform, precision) — to the portable
// reference path, after which calls keep succeeding with a recorded
// Degradation. See DESIGN.md, "Degradation model and error taxonomy".

// KernelPanicError is returned when a fast-path block computation panics
// and the numeric guard is not enabled: the worker recovered, the pool
// stayed usable, and the error carries platform, mode, kernel path, the C
// block coordinates (plus batch entry index, if any) and the stack.
type KernelPanicError = guard.KernelPanicError

// DegradedReason classifies why a kernel path was demoted: a static
// contract violation found at registration verification, a runtime panic,
// or the numeric guard.
type DegradedReason = guard.Reason

// Demotion reasons.
const (
	DegradedContract = guard.ReasonContract
	DegradedPanic    = guard.ReasonPanic
	DegradedNumeric  = guard.ReasonNumeric
)

// Degradation records one demotion of a kernel path to the reference path.
type Degradation = guard.Degradation

// BatchCancelError reports a batch call abandoned on context cancellation,
// with partial-completion accounting. errors.Is(err, context.Canceled)
// (or DeadlineExceeded) sees through it.
type BatchCancelError = core.BatchCancelError

// ErrAliasedBatch is returned when a batch's entries write overlapping C
// storage (checked by CheckSBatchAliasing/CheckDBatchAliasing, and up front
// by batch calls on a Context built WithAliasCheck).
var ErrAliasedBatch = core.ErrAliasedBatch

// Degradations lists every kernel path currently demoted to the reference
// path, across all platforms, sorted by (platform, kernel).
func Degradations() []Degradation { return guard.List("") }

// DegradationsFor lists the demotions recorded for one platform.
func DegradationsFor(p *Platform) []Degradation { return guard.List(p.Name) }

// ResetDegradations clears the degradation registry and the per-platform
// contract-verification memo, re-promoting every kernel path. Meant for
// tests and for operators re-arming the fast path after an investigated
// incident.
func ResetDegradations() { guard.Reset() }

// CheckSBatchAliasing reports ErrAliasedBatch if two FP32 batch entries
// write overlapping C storage. Adjacent-but-disjoint views of one backing
// array pass.
func CheckSBatchAliasing(batch []SBatchEntry) error { return core.CheckBatchAliasing(batch) }

// CheckDBatchAliasing is the FP64 counterpart of CheckSBatchAliasing.
func CheckDBatchAliasing(batch []DBatchEntry) error { return core.CheckBatchAliasing(batch) }
