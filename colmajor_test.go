package libshalom

import (
	"testing"
	"testing/quick"

	"libshalom/internal/mat"
)

// colAt reads element (i, j) of a column-major matrix with column stride ld.
func colAt(data []float32, ld, i, j int) float32 { return data[j*ld+i] }

// buildCol creates a column-major rows×cols matrix with the given column
// stride filled from rng.
func buildCol(rows, cols, ld int, rng *mat.RNG) []float32 {
	s := make([]float32, cols*ld)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			s[j*ld+i] = rng.Float32() - 0.5
		}
	}
	return s
}

func TestSGEMMColMajorKnown(t *testing.T) {
	// [1 2; 3 4]·[5 6; 7 8] = [19 22; 43 50], all column-major.
	a := []float32{1, 3, 2, 4} // columns (1,3), (2,4)
	b := []float32{5, 7, 6, 8}
	c := make([]float32, 4)
	if err := SGEMMColMajor(false, false, 2, 2, 2, 1, a, 2, b, 2, 0, c, 2); err != nil {
		t.Fatal(err)
	}
	want := []float32{19, 43, 22, 50} // column-major result
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestSGEMMColMajorProperty(t *testing.T) {
	ctx := New()
	defer ctx.Close()
	f := func(seed uint32) bool {
		rng := mat.NewRNG(uint64(seed) + 777)
		m, n, k := rng.Intn(40)+1, rng.Intn(40)+1, rng.Intn(40)+1
		transA := rng.Intn(2) == 1
		transB := rng.Intn(2) == 1
		alpha := float32(rng.Float64()*2 - 1)
		beta := float32(rng.Float64()*2 - 1)

		// Stored shapes per BLAS: A is m×k (or k×m when transposed), etc.
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		lda := ar + rng.Intn(4)
		ldb := br + rng.Intn(4)
		ldc := m + rng.Intn(4)
		a := buildCol(ar, ac, lda, rng)
		b := buildCol(br, bc, ldb, rng)
		c := buildCol(m, n, ldc, rng)
		orig := append([]float32(nil), c...)

		if err := ctx.SGEMMColMajor(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc); err != nil {
			t.Logf("call failed: %v", err)
			return false
		}
		opA := func(i, p int) float32 {
			if transA {
				return colAt(a, lda, p, i)
			}
			return colAt(a, lda, i, p)
		}
		opB := func(p, j int) float32 {
			if transB {
				return colAt(b, ldb, j, p)
			}
			return colAt(b, ldb, p, j)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var acc float64
				for p := 0; p < k; p++ {
					acc += float64(opA(i, p)) * float64(opB(p, j))
				}
				want := float32(float64(alpha)*acc) + beta*orig[j*ldc+i]
				got := colAt(c, ldc, i, j)
				d := got - want
				if d > 1e-2 || d < -1e-2 {
					t.Logf("m%d n%d k%d tA%v tB%v: C(%d,%d)=%v want %v", m, n, k, transA, transB, i, j, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDGEMMColMajor(t *testing.T) {
	a := []float64{1, 3, 2, 4}
	b := []float64{5, 7, 6, 8}
	c := []float64{1, 1, 1, 1}
	if err := DGEMMColMajor(false, false, 2, 2, 2, 2, a, 2, b, 2, 1, c, 2); err != nil {
		t.Fatal(err)
	}
	want := []float64{39, 87, 45, 101} // 2·product + 1
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestColMajorTransposedVariants(t *testing.T) {
	// A^T·B^T in column-major equals (B·A)^T; check one hand-computed case.
	// A stored 3×2 (so op(A) is 2×3), B stored 4×3 (op(B) is 3×4).
	rng := mat.NewRNG(5)
	a := buildCol(3, 2, 3, rng)
	b := buildCol(4, 3, 4, rng)
	c := make([]float32, 2*4)
	if err := SGEMMColMajor(true, true, 2, 4, 3, 1, a, 3, b, 4, 0, c, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			var acc float32
			for p := 0; p < 3; p++ {
				acc += colAt(a, 3, p, i) * colAt(b, 4, j, p)
			}
			if d := colAt(c, 2, i, j) - acc; d > 1e-4 || d < -1e-4 {
				t.Fatalf("C(%d,%d) wrong", i, j)
			}
		}
	}
}
