package libshalom_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"libshalom"
	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/mat"
)

// healProblem builds a random FP32 problem and its oracle.
type healProblem struct {
	m, n, k int
	a, b    *mat.F32
	want    *mat.F32
}

func newHealProblem(seed uint64, m, n, k int) *healProblem {
	rng := mat.NewRNG(seed)
	p := &healProblem{m: m, n: n, k: k}
	p.a = mat.RandomF32(m, k, rng)
	p.b = mat.RandomF32(k, n, rng)
	zero := mat.NewF32(m, n)
	p.want = zero.Clone()
	mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, p.a, p.b, 0, p.want)
	return p
}

// run executes the problem on ctx into a fresh C and asserts correctness.
func (p *healProblem) run(t *testing.T, ctx *libshalom.Context, what string) {
	t.Helper()
	c := mat.NewF32(p.m, p.n)
	if err := ctx.SGEMM(libshalom.NN, p.m, p.n, p.k, 1, p.a.Data, p.a.Stride, p.b.Data, p.b.Stride, 0, c.Data, c.Stride); err != nil {
		t.Fatalf("%s: SGEMM failed: %v", what, err)
	}
	for i := 0; i < p.m; i++ {
		for j := 0; j < p.n; j++ {
			got, want := c.At(i, j), p.want.At(i, j)
			if math.Abs(float64(got-want)) > 1e-3*(1+math.Abs(float64(want))) {
				t.Fatalf("%s: C(%d,%d) = %v, want %v", what, i, j, got, want)
			}
		}
	}
}

func resetHealState() {
	faults.Reset()
	libshalom.ResetDegradations()
}

// The full healing loop through the public API: an injected panic is
// retried transparently (correct result, breaker open), cooldown expires,
// eight agreeing canaries close the breaker, and the kernel-path call
// counters prove the fast path is measurably back in use.
func TestHealingLoopEndToEnd(t *testing.T) {
	resetHealState()
	defer resetHealState()
	prev := libshalom.ConfigureHealing(libshalom.HealingConfig{
		Cooldown: 20 * time.Millisecond, CanaryTarget: 8, CanaryStride: 1,
	})
	defer libshalom.ConfigureHealing(prev)

	ctx := libshalom.New(libshalom.WithThreads(1), libshalom.WithTelemetry())
	p := newHealProblem(1, 64, 48, 24)

	// 1. One injected panic: the transient retry answers correctly and the
	// breaker opens.
	faults.Arm(faults.PanicInKernel, 1)
	p.run(t, ctx, "tripping call")
	degr := libshalom.Degradations()
	if len(degr) != 1 || degr[0].State != libshalom.BreakerOpen || degr[0].Reason != libshalom.DegradedPanic {
		t.Fatalf("after trip: degradations = %+v", degr)
	}
	snap := ctx.Snapshot()
	if snap.HealCount("breaker-open") != 1 || snap.HealCount("transient-retry") != 1 {
		t.Fatalf("after trip: heal events = %+v", snap.Heal)
	}

	// 2. During the cooldown every call runs the reference path — correct,
	// and counted under the "ref" kernel label.
	refBefore := snap.KernelCalls("ref")
	for i := 0; i < 3; i++ {
		p.run(t, ctx, "cooldown call")
	}
	snap = ctx.Snapshot()
	if got := snap.KernelCalls("ref") - refBefore; got < 3 {
		t.Fatalf("cooldown calls on ref = %d, want >= 3", got)
	}

	// 3. After the cooldown, eight agreeing canaries close the breaker.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 8; i++ {
		p.run(t, ctx, "canary call")
	}
	if !libshalom.Health().Healthy() {
		t.Fatalf("breaker did not close after 8 canaries: %+v", libshalom.Health().Breakers)
	}
	snap = ctx.Snapshot()
	if snap.HealCount("breaker-probe") != 1 || snap.HealCount("canary-agree") != 8 || snap.HealCount("breaker-close") != 1 {
		t.Fatalf("healing events = %+v", snap.Heal)
	}
	if snap.HealCount("canary-mismatch") != 0 {
		t.Fatalf("unexpected canary mismatch: %+v", snap.Heal)
	}

	// 4. Healed: the fast path is measurably back in use.
	fastBefore := snap.KernelCalls("fast")
	for i := 0; i < 5; i++ {
		p.run(t, ctx, "healed call")
	}
	snap = ctx.Snapshot()
	if got := snap.KernelCalls("fast") - fastBefore; got < 5 {
		t.Fatalf("healed calls on fast = %d, want >= 5", got)
	}
	// The healed record keeps its trip count; history keeps the trip.
	rep := libshalom.Health()
	if len(rep.Breakers) != 1 || rep.Breakers[0].Trips != 1 || rep.Breakers[0].State != libshalom.BreakerHealthy {
		t.Fatalf("healed breaker record = %+v", rep.Breakers)
	}
	if len(libshalom.DegradationHistory()) != 1 {
		t.Fatalf("history = %+v", libshalom.DegradationHistory())
	}
}

// A persistent fault must not heal: the first canary disagrees, the breaker
// re-opens with a doubled cooldown and an incremented trip count — and no
// call ever returns a wrong element.
func TestHealingPersistentFaultReopens(t *testing.T) {
	resetHealState()
	defer resetHealState()
	prev := libshalom.ConfigureHealing(libshalom.HealingConfig{
		Cooldown: 10 * time.Millisecond, CanaryTarget: 8, CanaryStride: 1,
	})
	defer libshalom.ConfigureHealing(prev)

	ctx := libshalom.New(libshalom.WithThreads(1), libshalom.WithTelemetry())
	p := newHealProblem(2, 48, 32, 16)
	faults.Arm(faults.PanicInKernel, faults.Unlimited)
	defer faults.Reset()

	p.run(t, ctx, "tripping call") // trip 1, retried correctly
	time.Sleep(30 * time.Millisecond)
	p.run(t, ctx, "canary call") // canary panics -> mismatch -> reopen
	degr := libshalom.Degradations()
	if len(degr) != 1 || degr[0].State != libshalom.BreakerOpen {
		t.Fatalf("breaker after failed canary = %+v", degr)
	}
	if degr[0].Trips != 2 || degr[0].Reason != libshalom.DegradedCanary {
		t.Fatalf("reopened record = %+v, want trips 2, canary-mismatch reason", degr[0])
	}
	snap := ctx.Snapshot()
	if snap.HealCount("canary-mismatch") != 1 || snap.HealCount("breaker-close") != 0 {
		t.Fatalf("heal events after failed canary = %+v", snap.Heal)
	}
	// Still answering correctly on the reference path.
	p.run(t, ctx, "post-reopen call")
}

// WithDeadline through the public API: a stalled worker surfaces as a typed
// *StuckWorkerError well before the stall drains, never a hang.
func TestDeadlineConvertsStuckWorker(t *testing.T) {
	resetHealState()
	defer resetHealState()
	const budget = 100 * time.Millisecond
	ctx := libshalom.New(libshalom.WithThreads(4), libshalom.WithDeadline(budget))
	faults.Arm(faults.StuckWorker, 1)
	defer faults.Reset()

	rng := mat.NewRNG(3)
	a := mat.RandomF32(256, 32, rng)
	b := mat.RandomF32(32, 256, rng)
	c := mat.NewF32(256, 256)
	done := make(chan error, 1)
	go func() {
		done <- ctx.SGEMM(libshalom.NN, 256, 256, 32, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	}()
	select {
	case err := <-done:
		var swe *libshalom.StuckWorkerError
		if !errors.As(err, &swe) {
			t.Fatalf("err = %v (%T), want *StuckWorkerError", err, err)
		}
		if swe.Budget != budget {
			t.Fatalf("budget in error = %v, want %v", swe.Budget, budget)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadline call hung")
	}
	// Let the stalled straggler drain before the shared pool closes.
	time.Sleep(faults.StuckSleep)
	ctx.Close()
}

// WithoutTransientRetry restores the raw failure surface: an injected
// panic returns *KernelPanicError instead of healing.
func TestWithoutTransientRetrySurfacesPanic(t *testing.T) {
	resetHealState()
	defer resetHealState()
	ctx := libshalom.New(libshalom.WithThreads(1), libshalom.WithoutTransientRetry())
	faults.Arm(faults.PanicInKernel, 1)
	defer faults.Reset()
	rng := mat.NewRNG(4)
	a := mat.RandomF32(32, 16, rng)
	b := mat.RandomF32(16, 24, rng)
	c := mat.NewF32(32, 24)
	err := ctx.SGEMM(libshalom.NN, 32, 24, 16, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	var kpe *libshalom.KernelPanicError
	if !errors.As(err, &kpe) {
		t.Fatalf("err = %v (%T), want *KernelPanicError", err, err)
	}
	if len(libshalom.Degradations()) != 0 {
		t.Fatalf("raw panic tripped a breaker: %+v", libshalom.Degradations())
	}
}

// guard API sanity for the public aliases: the state constants round-trip.
func TestBreakerStateAliases(t *testing.T) {
	if libshalom.BreakerHealthy != guard.StateHealthy || libshalom.BreakerOpen != guard.StateOpen || libshalom.BreakerProbing != guard.StateProbing {
		t.Fatal("breaker state aliases drifted from guard")
	}
}
